package server

// Metric definitions for the HTTP service. Everything the search
// already knows about its own effort (core.Stats — the quantities
// behind Figure 7 of the paper) is aggregated here across queries, so
// a fleet of pathserve processes can be scraped and a hot-path
// regression shows up as a slope change rather than an anecdote.

import (
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/obs"
)

// metrics holds every service-level metric, registered on one
// obs.Registry (exposed at GET /metrics).
type metrics struct {
	// Search effort, aggregated from core.Stats per completed query.
	searches      *obs.Counter
	searchCalls   *obs.Counter
	searchOffers  *obs.Counter
	prunedBestT   *obs.Counter
	prunedBestU   *obs.Counter
	cautionSaves  *obs.Counter
	exhausted     *obs.Counter
	truncated     *obs.Counter
	completions   *obs.Counter
	searchSeconds *obs.Histogram

	// Completion memo cache.
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheSize      *obs.Gauge
	cacheBytes     *obs.Gauge

	// Multi-schema registry: per-schema labeled families (cardinality
	// bounded by schemaLG; overflow collapses to obs.OverflowLabel),
	// reload outcomes, snapshot lifecycle, and shard invalidation.
	schemaLG           *obs.LabelGuard
	schemaSearches     *obs.CounterVec
	schemaCacheHits    *obs.CounterVec
	schemaCacheMisses  *obs.CounterVec
	schemaGeneration   *obs.GaugeVec
	snapshotsLive      *obs.Gauge
	reloads            *obs.Counter
	reloadFailures     *obs.Counter
	cacheInvalidations *obs.Counter
	unknownSchema      *obs.Counter

	// Robustness: admission control, deadlines, panic isolation,
	// singleflight, and response-encode failures.
	inflight           *obs.Gauge
	sheds              *obs.Counter
	timeouts           *obs.Counter
	canceled           *obs.Counter
	panicsRecovered    *obs.Counter
	singleflightShared *obs.Counter
	encodeFailures     *obs.Counter

	// Materialized all-pairs closure: serving outcomes, build
	// lifecycle, and the shared byte budget.
	closureHits         *obs.Counter
	closureMisses       *obs.Counter
	closureFallbacks    *obs.Counter
	closureBuilds       *obs.CounterVec
	closureBuildSeconds *obs.Histogram
	closureBytes        *obs.Gauge

	// Durable snapshot persistence: save/restore lifecycle of the
	// crash-safe on-disk state (internal/persist). The counters are
	// scrape-synced from the store's own Stats, so events that fired
	// before the observer was attached (boot-time restores) are never
	// undercounted.
	persistSaves          *obs.Counter
	persistSaveFailures   *obs.Counter
	persistSavesSkipped   *obs.Counter
	persistRestores       *obs.Counter
	persistRecompiles     *obs.Counter
	persistQuarantines    *obs.Counter
	persistSaveSeconds    *obs.Histogram
	persistRestoreSeconds *obs.Histogram

	// Interactive keystroke sessions (/v1/sessions): lifecycle, frame
	// traffic, and per-schema attribution.
	sessionsOpen     *obs.Gauge
	sessionsTotal    *obs.Counter
	sessionsRejected *obs.Counter
	sessionUpdates   *obs.Counter
	sessionBatches   *obs.Counter
	sessionFinals    *obs.Counter
	sessionSkipped   *obs.Counter
	sessionRebinds   *obs.Counter
	sessionErrors    *obs.CounterVec
	schemaSessions   *obs.CounterVec

	// Versioned API: requests still arriving on pre-/v1 routes.
	deprecated *obs.CounterVec
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		searches: reg.Counter("pathcomplete_searches_total",
			"Completion searches executed (cache misses and traced queries)."),
		searchCalls: reg.Counter("pathcomplete_search_traverse_calls_total",
			"Recursive traverse calls across all searches (the paper's Figure 7 cost metric)."),
		searchOffers: reg.Counter("pathcomplete_search_offers_total",
			"Complete consistent paths offered to update() across all searches."),
		prunedBestT: reg.Counter("pathcomplete_search_pruned_bestt_total",
			"Children pruned by the best[T] bound (Algorithm 2 line 9)."),
		prunedBestU: reg.Counter("pathcomplete_search_pruned_bestu_total",
			"Children pruned by the per-node best[u] test (Algorithm 2 lines 10-11)."),
		cautionSaves: reg.Counter("pathcomplete_search_caution_saves_total",
			"Children that failed best[u] but were explored due to a caution-set intersection (Section 4.1)."),
		exhausted: reg.Counter("pathcomplete_search_exhausted_total",
			"Searches stopped early by the MaxCalls budget."),
		truncated: reg.Counter("pathcomplete_search_truncated_total",
			"Searches whose answer set was truncated by MaxPaths."),
		completions: reg.Counter("pathcomplete_search_completions_total",
			"Optimal completions returned across all searches."),
		searchSeconds: reg.Histogram("pathcomplete_search_duration_seconds",
			"Wall-clock latency of one completion search.", obs.DefBuckets()),
		cacheHits: reg.Counter("pathcomplete_cache_hits_total",
			"Completion requests answered from the memo cache."),
		cacheMisses: reg.Counter("pathcomplete_cache_misses_total",
			"Completion requests that ran a fresh search."),
		cacheEvictions: reg.Counter("pathcomplete_cache_evictions_total",
			"Memo cache entries evicted by the LRU size bound."),
		cacheSize: reg.Gauge("pathcomplete_cache_entries",
			"Memo cache entries currently resident."),
		cacheBytes: reg.Gauge("pathcomplete_cache_bytes",
			"Estimated resident bytes of cached completion results across all schema shards."),
		schemaLG: obs.NewLabelGuard(obs.DefaultLabelCap),
		schemaSearches: reg.CounterVec("pathcomplete_schema_searches_total",
			"Completion searches executed, by schema (bounded cardinality; overflow collapses to _other).", "schema"),
		schemaCacheHits: reg.CounterVec("pathcomplete_schema_cache_hits_total",
			"Memo cache hits, by schema.", "schema"),
		schemaCacheMisses: reg.CounterVec("pathcomplete_schema_cache_misses_total",
			"Memo cache misses, by schema.", "schema"),
		schemaGeneration: reg.GaugeVec("pathcomplete_schema_generation",
			"Registry generation currently served, by schema.", "schema"),
		snapshotsLive: reg.Gauge("pathcomplete_snapshots_live",
			"Schema snapshots created and not yet drained (served + still referenced by in-flight requests)."),
		reloads: reg.Counter("pathcomplete_schema_reloads_total",
			"Successful registry reloads (atomic table swaps)."),
		reloadFailures: reg.Counter("pathcomplete_schema_reload_failures_total",
			"Registry reloads that failed and left the previous generation serving."),
		cacheInvalidations: reg.Counter("pathcomplete_cache_invalidations_total",
			"Memo cache entries dropped because their schema generation was superseded by a reload."),
		unknownSchema: reg.Counter("pathcomplete_unknown_schema_total",
			"Requests naming a schema the registry does not serve (answered 404)."),
		inflight: reg.Gauge("pathcomplete_admission_inflight",
			"Search requests currently holding an admission slot."),
		sheds: reg.Counter("pathcomplete_admission_sheds_total",
			"Search requests shed with 429 because the admission queue was full."),
		timeouts: reg.Counter("pathcomplete_request_timeouts_total",
			"Requests whose deadline expired (search stopped at its best-so-far answer, or the admission wait ended)."),
		canceled: reg.Counter("pathcomplete_request_canceled_total",
			"Searches stopped early because the request context was canceled (client gone)."),
		panicsRecovered: reg.Counter("pathcomplete_panics_recovered_total",
			"Handler panics caught by the recovery middleware (answered 500, process kept serving)."),
		singleflightShared: reg.Counter("pathcomplete_singleflight_shared_total",
			"Completion requests that shared a concurrent identical search instead of running their own."),
		encodeFailures: reg.Counter("pathcomplete_json_encode_failures_total",
			"Response bodies whose JSON encoding failed (logged with request ID, not silently dropped)."),
		closureHits: reg.Counter("pathcomplete_closure_hits_total",
			"Completion requests answered from the materialized all-pairs closure index."),
		closureMisses: reg.Counter("pathcomplete_closure_misses_total",
			"Closure-eligible requests that fell back to the search kernel (index building, disabled, or missing the cell)."),
		closureFallbacks: reg.Counter("pathcomplete_closure_fallbacks_total",
			"Completion requests ineligible for the closure by shape (multi-gap, E override, trace, or per-request budget)."),
		closureBuilds: reg.CounterVec("pathcomplete_closure_builds_total",
			"Background closure builds finished, by outcome (ready, budget, canceled, error).", "outcome"),
		closureBuildSeconds: reg.Histogram("pathcomplete_closure_build_seconds",
			"Wall-clock duration of one all-pairs closure build.", obs.DefBuckets()),
		closureBytes: reg.Gauge("pathcomplete_closure_bytes",
			"Bytes reserved against the closure budget across live indexes and in-progress builds."),
		persistSaves: reg.Counter("pathcomplete_persist_saves_total",
			"Snapshot files durably written (temp file + fsync + atomic rename)."),
		persistSaveFailures: reg.Counter("pathcomplete_persist_save_failures_total",
			"Snapshot writes that failed; the previous durable file, if any, is intact."),
		persistSavesSkipped: reg.Counter("pathcomplete_persist_saves_skipped_total",
			"Saves dropped by the generation gate (a background persist lost the race against a newer reload)."),
		persistRestores: reg.Counter("pathcomplete_persist_restores_total",
			"Closure indexes restored from a durable snapshot instead of rebuilt."),
		persistRecompiles: reg.Counter("pathcomplete_persist_recompiles_total",
			"Cold starts that fell back to SDL recompilation (missing, stale, or corrupt durable state)."),
		persistQuarantines: reg.Counter("pathcomplete_persist_quarantines_total",
			"Durable files moved to quarantine because they failed checksum, version, or schema validation."),
		persistSaveSeconds: reg.Histogram("pathcomplete_persist_save_duration_seconds",
			"Wall-clock duration of one durable snapshot write.", obs.DefBuckets()),
		persistRestoreSeconds: reg.Histogram("pathcomplete_persist_restore_duration_seconds",
			"Wall-clock duration of one verified restore from disk.", obs.DefBuckets()),
		sessionsOpen: reg.Gauge("pathcomplete_sessions_open",
			"Interactive WebSocket sessions currently open."),
		sessionsTotal: reg.Counter("pathcomplete_sessions_total",
			"Interactive WebSocket sessions accepted over the process lifetime."),
		sessionsRejected: reg.Counter("pathcomplete_sessions_rejected_total",
			"Session connects refused with 429 by the MaxSessions cap."),
		sessionUpdates: reg.Counter("pathcomplete_session_updates_total",
			"Keystroke update frames accepted across all sessions."),
		sessionBatches: reg.Counter("pathcomplete_session_batches_total",
			"Per-anchor candidate batch frames streamed across all sessions."),
		sessionFinals: reg.Counter("pathcomplete_session_finals_total",
			"Updates answered with a final merged frame."),
		sessionSkipped: reg.Counter("pathcomplete_session_skipped_total",
			"Updates superseded by a newer keystroke before a final answer."),
		sessionRebinds: reg.Counter("pathcomplete_session_rebinds_total",
			"Sessions rebound to a new snapshot generation after a reload."),
		sessionErrors: reg.CounterVec("pathcomplete_session_errors_total",
			"Error frames sent to session clients, by protocol error code.", "code"),
		schemaSessions: reg.CounterVec("pathcomplete_schema_sessions_total",
			"Interactive sessions accepted, by schema.", "schema"),
		deprecated: reg.CounterVec("pathcomplete_deprecated_requests_total",
			"Requests served on deprecated pre-/v1 routes (answered with a Deprecation header).", "route"),
	}
}

// schemaLabel bounds a schema name for use as a metric label value:
// the first obs.DefaultLabelCap distinct names pass through, the rest
// collapse to obs.OverflowLabel so a hostile or churning schema
// directory cannot mint unbounded time series.
func (m *metrics) schemaLabel(name string) string { return m.schemaLG.Bound(name) }

// observeSearch folds one completed search into the aggregates.
// traceID, when non-empty, annotates the latency histogram bucket
// with an OpenMetrics exemplar referencing the retained trace.
func (m *metrics) observeSearch(res *core.Result, elapsed time.Duration, traceID string) {
	m.searches.Inc()
	m.searchCalls.Add(uint64(res.Stats.Calls))
	m.searchOffers.Add(uint64(res.Stats.Offers))
	m.prunedBestT.Add(uint64(res.Stats.PrunedBestT))
	m.prunedBestU.Add(uint64(res.Stats.PrunedBestU))
	m.cautionSaves.Add(uint64(res.Stats.CautionSaves))
	m.completions.Add(uint64(len(res.Completions)))
	if res.Exhausted {
		m.exhausted.Inc()
	}
	if res.Truncated {
		m.truncated.Inc()
	}
	m.searchSeconds.ObserveExemplar(elapsed.Seconds(), traceID)
}
