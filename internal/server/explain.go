package server

// GET/POST /v1/explain: the provenance view of a completion query.
// The endpoint answers the two questions the Figure 1 loop leaves a
// user with — why did this completion rank where it did, and which
// schema edges does the answer stand on. It runs the exact /v1/complete
// pipeline (validation, snapshot pinning, admission, closure, cache,
// singleflight, search), so the derivations it explains are the
// derivations the completion endpoint served, then unfolds every
// completion into its CON-table rows (core.ExplainPath) and attaches
// the edge-ID bitmaps (core.EdgeSet) that the closure layer uses for
// edge-granular invalidation. Folding label.Con over the reported
// steps reproduces the ranked label — the replay contract locked by
// the core and server explain tests.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"pathcomplete/internal/core"
	"pathcomplete/internal/obs"
	"pathcomplete/internal/registry"
)

// ExplainEdgeJSON is one supporting schema edge: a row of the
// provenance record, identified by its dense RelID within the
// snapshot's generation.
type ExplainEdgeJSON struct {
	Rel  int    `json:"rel"`
	From string `json:"from"`
	Name string `json:"name"`
	To   string `json:"to"`
	Conn string `json:"conn"`
}

// ExplainStepJSON is one CON-table row of a completion's derivation:
// prevConn ∘ edgeConn → conn, with the running semantic length.
type ExplainStepJSON struct {
	Step     string `json:"step"`
	From     string `json:"from"`
	To       string `json:"to"`
	Rel      int    `json:"rel"`
	EdgeConn string `json:"edgeConn"`
	PrevConn string `json:"prevConn"`
	Conn     string `json:"conn"`
	SemLen   int    `json:"semlen"`
}

// ExplainCompletionJSON is one completion with its full derivation.
type ExplainCompletionJSON struct {
	// Rank is the completion's position in the served order (1-based):
	// sorted by label, then lexically.
	Rank   int    `json:"rank"`
	Path   string `json:"path"`
	Conn   string `json:"conn"`
	SemLen int    `json:"semlen"`
	// Steps derives the path edge by edge; the last row's conn/semlen
	// are the ranked label.
	Steps []ExplainStepJSON `json:"steps"`
	// Edges is the completion's own edge set as a hex bitmap
	// (least-significant word first) over the generation's RelIDs.
	Edges string `json:"edges"`
	// WhyRanked states the label-algebra reason for the rank.
	WhyRanked string `json:"whyRanked"`
}

// ExplainResponse is the data payload of a /v1/explain response.
type ExplainResponse struct {
	Expr       string `json:"expr"`
	Schema     string `json:"schema"`
	Generation uint64 `json:"generation"`
	// Engine names the subsystem that produced the explained answer —
	// explain shares /v1/complete's pipeline, closure index included.
	Engine string `json:"engine,omitempty"`
	// Constrained reports that the expression carried a gap regex or a
	// pushed-down predicate.
	Constrained bool `json:"constrained,omitempty"`
	// Support is the result-level invalidation footprint as a hex
	// bitmap: the union of the edges of every optimal-label witness the
	// search saw (a superset of the union of completion edge sets).
	// Absent when the result carries no support (frontier-merged or
	// truncated answers).
	Support string `json:"support,omitempty"`
	// SupportEdges lists the Support bitmap's edges in ID order.
	SupportEdges []ExplainEdgeJSON       `json:"supportEdges,omitempty"`
	Completions  []ExplainCompletionJSON `json:"completions"`
	Truncated    bool                    `json:"truncated,omitempty"`
	Aborted      bool                    `json:"aborted,omitempty"`
	StopReason   string                  `json:"stopReason,omitempty"`
}

// handleExplain serves GET and POST /v1/explain. POST takes the
// /v1/complete request body (trace is ignored: the derivation IS the
// trace); GET takes ?expr= and optional &e= for quick interactive use.
func (sv *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if r.Method == http.MethodGet {
		req.Expr = r.URL.Query().Get("expr")
		if raw := r.URL.Query().Get("e"); raw != "" {
			e, err := strconv.Atoi(raw)
			if err != nil {
				sv.jsonError(w, r, http.StatusBadRequest, "bad request: e is not an integer: "+raw)
				return
			}
			req.E = e
		}
	} else {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			sv.jsonError(w, r, decodeStatus(err), "bad request: "+err.Error())
			return
		}
	}
	// The derivation is the explanation; a kernel event log would only
	// force a cache-bypassing fresh search.
	req.Trace = false
	if err := sv.validateComplete(&req); err != nil {
		sv.jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	sn, ok := sv.acquireSnapshot(w, r)
	if !ok {
		return
	}
	defer sn.Release()
	ctx := r.Context()
	if d := sv.effectiveTimeout(req.TimeoutMs); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, admitted := sv.admit(w, r, ctx)
	if !admitted {
		return
	}
	defer release()
	c, status, err := sv.complete(ctx, sn, req)
	if err != nil {
		obs.SpanFromContext(r.Context()).SetError(err.Error())
		sv.jsonError(w, r, status, err.Error())
		return
	}
	obs.SpanFromContext(r.Context()).SetAttr(obs.AttrEngine, c.engine)
	sv.respond(w, r, http.StatusOK, sv.explainResponse(sn, c), completeMeta(sn, c))
}

// explainResponse unfolds one completed query into its provenance
// view.
func (sv *Server) explainResponse(sn *registry.Snapshot, c completed) ExplainResponse {
	s := sn.Schema()
	res := c.res
	out := ExplainResponse{
		Expr:        c.expr.String(),
		Schema:      sn.Name(),
		Generation:  sn.Generation(),
		Engine:      c.engine,
		Constrained: exprConstrained(c.expr),
		Completions: make([]ExplainCompletionJSON, 0, len(res.Completions)),
		Truncated:   res.Truncated,
		Aborted:     res.Aborted,
		StopReason:  string(res.StopReason),
	}
	if res.Support != nil {
		out.Support = res.Support.Hex()
		ids := res.Support.IDs()
		out.SupportEdges = make([]ExplainEdgeJSON, len(ids))
		for i, id := range ids {
			rel := s.Rel(id)
			out.SupportEdges[i] = ExplainEdgeJSON{
				Rel:  int(rel.ID),
				From: s.Class(rel.From).Name,
				Name: rel.Name,
				To:   s.Class(rel.To).Name,
				Conn: rel.Conn.String(),
			}
		}
	}
	for i, cc := range res.Completions {
		steps := core.ExplainPath(cc.Path)
		jsteps := make([]ExplainStepJSON, len(steps))
		for j, st := range steps {
			jsteps[j] = ExplainStepJSON{
				Step:     st.Step,
				From:     st.From,
				To:       st.To,
				Rel:      int(st.Rel),
				EdgeConn: st.EdgeConn,
				PrevConn: st.PrevConn,
				Conn:     st.Conn,
				SemLen:   st.SemLen,
			}
		}
		out.Completions = append(out.Completions, ExplainCompletionJSON{
			Rank:   i + 1,
			Path:   cc.Path.String(),
			Conn:   cc.Label.Conn().String(),
			SemLen: cc.Label.SemLen(),
			Steps:  jsteps,
			Edges:  core.EdgesOf(s, cc.Path.Rels).Hex(),
			WhyRanked: fmt.Sprintf(
				"label %s is in the AGG* optimal set: composed connector %q (strength tier %d), semantic length %d; ranked %d of %d by label, then lexically",
				cc.Label, cc.Label.Conn(), cc.Label.Conn().Rank(), cc.Label.SemLen(), i+1, len(res.Completions)),
		})
	}
	return out
}
