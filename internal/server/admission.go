package server

// Admission control for the search endpoints. Cheap read-only
// endpoints (/healthz, /metrics, ...) are never gated — an overloaded
// process must stay observable — but /complete and /evaluate run
// Algorithm 2, whose worst case is exponential in the schema, so the
// number running at once is bounded by a semaphore with a bounded wait
// queue. Requests beyond the queue are shed immediately with
// 429 + Retry-After: under overload a fast "come back later" beats a
// slow success, and the retrying client re-enters the queue with
// backoff instead of piling onto a dying process.

import (
	"context"
)

// admitOutcome is the result of one admission attempt.
type admitOutcome int

const (
	admitOK       admitOutcome = iota // slot acquired; caller must release
	admitShed                         // queue full: shed with 429
	admitCanceled                     // caller's context ended while queued
)

// gate is a concurrency-limiting semaphore with a bounded wait queue.
type gate struct {
	slots chan struct{} // buffered semaphore: len == searches in flight
	queue chan struct{} // buffered: len == requests waiting for a slot
}

func newGate(width, queueLen int) *gate {
	return &gate{
		slots: make(chan struct{}, width),
		queue: make(chan struct{}, queueLen),
	}
}

// acquire tries to take a slot, waiting in the bounded queue when the
// gate is saturated. On admitOK the caller must call release exactly
// once.
func (g *gate) acquire(ctx context.Context) admitOutcome {
	// Fast path: a free slot, no queue.
	select {
	case g.slots <- struct{}{}:
		return admitOK
	default:
	}
	// Saturated: enter the bounded wait queue or shed.
	select {
	case g.queue <- struct{}{}:
	default:
		return admitShed
	}
	defer func() { <-g.queue }()
	select {
	case g.slots <- struct{}{}:
		return admitOK
	case <-ctx.Done():
		return admitCanceled
	}
}

// release returns a slot taken by acquire.
func (g *gate) release() { <-g.slots }

// inFlight reports the number of held slots.
func (g *gate) inFlight() int { return len(g.slots) }

// queued reports the number of waiters.
func (g *gate) queued() int { return len(g.queue) }
