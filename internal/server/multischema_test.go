package server

// Multi-schema serving-path tests: the /schemas listing, schema
// selection and 404s, per-schema cache shard isolation, hot reload
// invalidation (a post-reload query must never see a pre-reload
// answer), and the HTTP-level reload race drill (zero non-200s across
// 100 generations under concurrent clients, with a snapshot-leak
// assertion at the end).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pathcomplete/internal/core"
	"pathcomplete/internal/registry"
	"pathcomplete/internal/uni"
)

// The same distinguishable pair the registry tests use: the completion
// of "a~name" renders "a$>part.name" under v1 and "a$>link.name" under
// v2, so response bodies identify the generation that served them.
const (
	msSchemaV1 = "class a\nclass b\nhaspart a b part whole\nattr b name C\n"
	msSchemaV2 = "class a\nclass c\nhaspart a c link rev\nattr c name C\n"

	msAnswerV1 = "a$>part.name"
	msAnswerV2 = "a$>link.name"
)

func msWriteDir(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, text := range files {
		if err := os.WriteFile(filepath.Join(dir, name+".sdl"), []byte(text), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
}

// multiServer boots a server over a fresh schemas directory holding the
// given SDL files and returns the server, its test listener, and the
// directory (for reload tests to rewrite).
func multiServer(t *testing.T, files map[string]string) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	msWriteDir(t, dir, files)
	reg := registry.New(core.Exact())
	if err := reg.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	sv := NewFromRegistry(reg)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return sv, ts, dir
}

// completeHTTP posts one completion query and decodes the response.
func completeHTTP(t *testing.T, url, schema, expr string) (int, CompleteResponse, string) {
	t.Helper()
	u := url + "/complete"
	if schema != "" {
		u += "?schema=" + schema
	}
	resp, body := post(t, u, fmt.Sprintf(`{"expr": %q}`, expr))
	var out CompleteResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("decode %q: %v", body, err)
		}
	}
	return resp.StatusCode, out, body
}

// TestSchemasGolden pins the exact shape of the /schemas listing for a
// two-schema registry: names sorted, shape counts, the default flag on
// exactly the default entry, and fresh generations (normalized before
// the golden comparison because the load order of a directory's files
// is not specified).
func TestSchemasGolden(t *testing.T) {
	_, ts, _ := multiServer(t, map[string]string{"alpha": msSchemaV1, "beta": msSchemaV2})
	resp, err := http.Get(ts.URL + "/schemas")
	if err != nil {
		t.Fatalf("GET /schemas: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got SchemasResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The two snapshots carry generations {1, 2} in load order, which is
	// unspecified for a directory; assert the set and then normalize.
	gens := map[uint64]bool{}
	for i, s := range got.Schemas {
		gens[s.Generation] = true
		got.Schemas[i].Generation = 0
	}
	if !gens[1] || !gens[2] || len(gens) != 2 {
		t.Errorf("snapshot generations = %v, want {1, 2}", gens)
	}
	if got.Generation != 2 {
		t.Errorf("registry generation = %d, want 2", got.Generation)
	}
	got.Generation = 0

	want := SchemasResponse{
		Default: "alpha",
		Schemas: []SchemaInfoJSON{
			{Name: "alpha", Classes: 2, Rels: 4, Default: true, Closure: "disabled"},
			{Name: "beta", Classes: 2, Rels: 4, Closure: "disabled"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("/schemas mismatch:\n got:  %+v\n want: %+v", got, want)
	}
}

// TestUnknownSchema404: every snapshot-pinning endpoint answers 404
// with a JSON error for a name the registry does not serve, and the
// misses are counted.
func TestUnknownSchema404(t *testing.T) {
	sv, ts, _ := multiServer(t, map[string]string{"alpha": msSchemaV1})
	status, _, body := completeHTTP(t, ts.URL, "nope", "a~name")
	if status != http.StatusNotFound {
		t.Errorf("POST /complete?schema=nope: status = %d, want 404 (%s)", status, body)
	}
	if !strings.Contains(body, "unknown schema") {
		t.Errorf("404 body lacks the cause: %q", body)
	}
	resp, err := http.Get(ts.URL + "/schema?schema=nope")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /schema?schema=nope: status = %d, want 404", resp.StatusCode)
	}
	var sb strings.Builder
	if err := sv.metReg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "pathcomplete_unknown_schema_total 2") {
		t.Errorf("unknown-schema counter not at 2:\n%s", grepMetric(sb.String(), "unknown_schema"))
	}
}

func grepMetric(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestPerSchemaCacheIsolation: the same expression against two schemas
// hits two distinct cache shards — alpha's warm entry neither leaks its
// answer to beta nor counts as beta's hit.
func TestPerSchemaCacheIsolation(t *testing.T) {
	_, ts, _ := multiServer(t, map[string]string{"alpha": msSchemaV1, "beta": msSchemaV2})
	st, first, _ := completeHTTP(t, ts.URL, "alpha", "a~name")
	if st != 200 || first.Cached || first.Completions[0].Path != msAnswerV1 {
		t.Fatalf("alpha cold: status=%d cached=%v %+v", st, first.Cached, first.Completions)
	}
	st, warm, _ := completeHTTP(t, ts.URL, "alpha", "a~name")
	if st != 200 || !warm.Cached {
		t.Errorf("alpha warm: status=%d cached=%v, want a cache hit", st, warm.Cached)
	}
	// Same expression, other schema: must be a cold miss in beta's own
	// shard with beta's own answer.
	st, other, _ := completeHTTP(t, ts.URL, "beta", "a~name")
	if st != 200 {
		t.Fatalf("beta: status = %d", st)
	}
	if other.Cached {
		t.Errorf("beta first query was served from alpha's cache shard")
	}
	if got := other.Completions[0].Path; got != msAnswerV2 {
		t.Errorf("beta answer = %q, want %q (cross-schema cache leak)", got, msAnswerV2)
	}
	if other.Schema != "beta" || first.Schema != "alpha" {
		t.Errorf("responses misattributed: %q / %q", first.Schema, other.Schema)
	}
}

// TestReloadNeverServesStaleAnswer is the cache/singleflight regression
// test for hot reload: after POST /schemas/reload swaps in a changed
// schema, the same query must return the new answer from a fresh shard
// — never the (still warm) pre-reload completion.
func TestReloadNeverServesStaleAnswer(t *testing.T) {
	_, ts, dir := multiServer(t, map[string]string{"main": msSchemaV1})
	st, cold, _ := completeHTTP(t, ts.URL, "", "a~name")
	if st != 200 || cold.Completions[0].Path != msAnswerV1 {
		t.Fatalf("pre-reload: status=%d %+v", st, cold.Completions)
	}
	if st, warm, _ := completeHTTP(t, ts.URL, "", "a~name"); st != 200 || !warm.Cached {
		t.Fatalf("pre-reload warm: status=%d cached=%v", st, warm.Cached)
	}

	msWriteDir(t, dir, map[string]string{"main": msSchemaV2})
	resp, body := post(t, ts.URL+"/schemas/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status=%d body=%s", resp.StatusCode, body)
	}

	st, after, _ := completeHTTP(t, ts.URL, "", "a~name")
	if st != 200 {
		t.Fatalf("post-reload: status = %d", st)
	}
	if after.Cached {
		t.Errorf("post-reload query served from a stale cache shard")
	}
	if got := after.Completions[0].Path; got != msAnswerV2 {
		t.Errorf("post-reload answer = %q, want %q (stale generation leaked)", got, msAnswerV2)
	}
	if after.Generation <= cold.Generation {
		t.Errorf("generation did not advance: %d -> %d", cold.Generation, after.Generation)
	}
	// The new generation's answer is itself cacheable.
	if st, warm, _ := completeHTTP(t, ts.URL, "", "a~name"); st != 200 || !warm.Cached || warm.Completions[0].Path != msAnswerV2 {
		t.Errorf("post-reload warm: status=%d cached=%v %+v", st, warm.Cached, warm.Completions)
	}
}

// TestReloadWithoutDir409: a statically populated registry has nothing
// to reload from; the endpoint reports the conflict rather than a
// generic failure.
func TestReloadWithoutDir409(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	resp, body := post(t, ts.URL+"/schemas/reload", "")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("status = %d, want 409 (%s)", resp.StatusCode, body)
	}
}

// TestHTTPReloadRace is the serving-layer half of the hot-reload drill
// (the registry-level half lives in internal/registry): concurrent
// clients hammer /complete and /schemas through 100 reload generations
// that alternate the schema's shape. Every response must be a 200 with
// one of the two possible answers; afterwards the registry must have
// drained every superseded snapshot (Live == served names — the leak
// assertion). Run under -race by the CI race job.
func TestHTTPReloadRace(t *testing.T) {
	sv, ts, dir := multiServer(t, map[string]string{"main": msSchemaV1})

	const (
		clients = 6
		reloads = 100
	)
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		requests atomic.Int64
	)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				if id == 0 {
					// One client watches the listing while the others search.
					resp, err := http.Get(ts.URL + "/schemas")
					if err != nil {
						errs <- fmt.Errorf("GET /schemas: %w", err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("GET /schemas: status %d", resp.StatusCode)
						return
					}
					requests.Add(1)
					continue
				}
				st, out, body := completeHTTP(t, ts.URL, "main", "a~name")
				if st != http.StatusOK {
					errs <- fmt.Errorf("complete: status %d: %s", st, body)
					return
				}
				if len(out.Completions) != 1 {
					errs <- fmt.Errorf("complete: %d completions", len(out.Completions))
					return
				}
				if p := out.Completions[0].Path; p != msAnswerV1 && p != msAnswerV2 {
					errs <- fmt.Errorf("gen %d: impossible answer %q", out.Generation, p)
					return
				}
				requests.Add(1)
			}
		}(i)
	}

	for i := 0; i < reloads; i++ {
		text := msSchemaV1
		if i%2 == 0 {
			text = msSchemaV2
		}
		msWriteDir(t, dir, map[string]string{"main": text})
		// Alternate the two reload entry points: the HTTP handler and
		// the programmatic one the SIGHUP path uses.
		if i%2 == 0 {
			resp, body := post(t, ts.URL+"/schemas/reload", "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reload %d: status=%d body=%s", i, resp.StatusCode, body)
			}
		} else if err := sv.ReloadSchemas(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if requests.Load() == 0 {
		t.Fatalf("no client request completed — the drill exercised nothing")
	}
	if got, want := sv.reg.Live(), len(sv.reg.Names()); got != want {
		t.Errorf("Live() = %d after drain, want %d (snapshot leak across %d reloads)", got, want, reloads)
	}
	if got := sv.reg.Generation(); got < uint64(reloads) {
		t.Errorf("generation = %d after %d reloads", got, reloads)
	}
}
