package server

// Tests for the observability layer of the server: the /metrics
// exposition, per-query tracing over HTTP, the bounded memo cache,
// the JSON health endpoint, build introspection, and pprof mounting.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathcomplete/internal/core"
	"pathcomplete/internal/uni"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, string(b)
}

// metricValue extracts the value of an exactly-named sample line from
// an exposition body, or -1 when absent.
func metricValue(text, sample string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			var v float64
			fmt.Sscanf(rest, "%g", &v)
			return v
		}
	}
	return -1
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, false)
	// One miss, one hit, one parse failure.
	post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	post(t, ts.URL+"/complete", `{"expr":"ta ~ name"}`)
	post(t, ts.URL+"/complete", `{"expr":"ta..name"}`)

	resp, text := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}

	// Families and types present (valid exposition shape).
	for _, want := range []string{
		"# TYPE pathcomplete_search_traverse_calls_total counter",
		"# TYPE pathcomplete_search_duration_seconds histogram",
		"# TYPE pathcomplete_cache_hits_total counter",
		"# TYPE http_requests_total counter",
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE http_in_flight_requests gauge",
		`pathcomplete_search_duration_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Search effort aggregated from core.Stats: ta~name costs a known
	// 27 traverse calls on the university schema under Exact().
	if v := metricValue(text, "pathcomplete_search_traverse_calls_total"); v <= 0 {
		t.Errorf("traverse calls = %g, want > 0", v)
	}
	if v := metricValue(text, "pathcomplete_search_offers_total"); v <= 0 {
		t.Errorf("offers = %g, want > 0", v)
	}
	if v := metricValue(text, "pathcomplete_searches_total"); v != 1 {
		t.Errorf("searches = %g, want 1", v)
	}
	if v := metricValue(text, "pathcomplete_cache_hits_total"); v != 1 {
		t.Errorf("cache hits = %g, want 1", v)
	}
	if v := metricValue(text, "pathcomplete_cache_misses_total"); v != 1 {
		t.Errorf("cache misses = %g, want 1", v)
	}
	if v := metricValue(text, "pathcomplete_cache_entries"); v != 1 {
		t.Errorf("cache entries = %g, want 1", v)
	}
	if v := metricValue(text, `http_requests_total{path="/complete",method="POST",code="200"}`); v != 2 {
		t.Errorf("complete 200s = %g, want 2", v)
	}
	if v := metricValue(text, `http_requests_total{path="/complete",method="POST",code="400"}`); v != 1 {
		t.Errorf("complete 400s = %g, want 1", v)
	}
	// The scrape observes itself mid-flight: exactly one request (the
	// GET /metrics rendering this exposition) is in progress.
	if v := metricValue(text, "http_in_flight_requests"); v != 1 {
		t.Errorf("in-flight during scrape = %g, want 1 (the scrape itself)", v)
	}
}

func TestCompleteTrace(t *testing.T) {
	ts := testServer(t, false)
	// Warm the cache so we can prove tracing bypasses it.
	post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)

	resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out CompleteResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Cached {
		t.Error("traced request must not be served from cache")
	}
	if len(out.Trace) == 0 {
		t.Fatal("trace missing from response")
	}
	if first := out.Trace[0]; first.Kind != "enter" || first.Class != "ta" {
		t.Errorf("first trace event = %+v", first)
	}
	if out.Stats == nil || out.Stats.Calls != out.Calls || out.Stats.Calls == 0 {
		t.Errorf("stats = %+v, calls = %d", out.Stats, out.Calls)
	}
	if len(out.Completions) != 2 {
		t.Errorf("completions = %+v", out.Completions)
	}
	// Trace events match the reported effort: one enter per call.
	enters := 0
	for _, ev := range out.Trace {
		if ev.Kind == "enter" {
			enters++
		}
	}
	if enters != out.Calls {
		t.Errorf("enter events = %d, calls = %d", enters, out.Calls)
	}

	// traceLimit caps the log and reports the overflow.
	_, body2 := post(t, ts.URL+"/complete", `{"expr":"ta~name","trace":true,"traceLimit":3}`)
	var out2 CompleteResponse
	if err := json.Unmarshal([]byte(body2), &out2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out2.Trace) != 3 || out2.TraceDropped == 0 {
		t.Errorf("limited trace = %d events, dropped = %d", len(out2.Trace), out2.TraceDropped)
	}

	// An untraced request has no trace payload.
	_, body3 := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if strings.Contains(body3, `"trace"`) {
		t.Errorf("untraced response carries a trace: %s", body3)
	}
}

func TestHealthzJSON(t *testing.T) {
	ts := testServer(t, false)
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Status        string  `json:"status"`
		Schema        string  `json:"schema"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if out.Status != "ok" || out.Schema != "university" {
		t.Errorf("healthz = %+v", out)
	}
	if out.UptimeSeconds < 0 {
		t.Errorf("uptime = %g", out.UptimeSeconds)
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	ts := testServer(t, false)
	resp, body := getBody(t, ts.URL+"/buildinfo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v, _ := out["goVersion"].(string); !strings.HasPrefix(v, "go") {
		t.Errorf("goVersion = %v", out["goVersion"])
	}
	if n, _ := out["goroutines"].(float64); n < 1 {
		t.Errorf("goroutines = %v", out["goroutines"])
	}
}

func TestCacheEviction(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	sv.SetCacheCap(2)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	exprs := []string{"ta~name", "ta~course", "student~department"}
	for _, e := range exprs {
		resp, body := post(t, ts.URL+"/complete", `{"expr":"`+e+`"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", e, resp.StatusCode, body)
		}
	}
	sv.mu.Lock()
	size := sv.cache.len()
	sv.mu.Unlock()
	if size != 2 {
		t.Errorf("cache size = %d, want bound 2", size)
	}
	_, text := getBody(t, ts.URL+"/metrics")
	if v := metricValue(text, "pathcomplete_cache_evictions_total"); v != 1 {
		t.Errorf("evictions = %g, want 1", v)
	}
	if v := metricValue(text, "pathcomplete_cache_entries"); v != 2 {
		t.Errorf("cache entries gauge = %g, want 2", v)
	}
	// The evicted entry (the oldest) recomputes: miss count rises.
	post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	_, text = getBody(t, ts.URL+"/metrics")
	if v := metricValue(text, "pathcomplete_cache_misses_total"); v != 4 {
		t.Errorf("misses = %g, want 4 (evicted entry recomputed)", v)
	}
}

func TestLRURecency(t *testing.T) {
	c := newShardedCache(2, 0)
	r := &core.Result{}
	sh := shardID{schema: "uni", gen: 1}
	key := func(expr string) cacheKey { return cacheKey{shard: sh, expr: expr, e: 1} }
	c.put(key("a"), r)
	c.put(key("b"), r)
	if _, ok := c.get(key("a")); !ok {
		t.Fatal("a missing")
	}
	// a was refreshed, so inserting c evicts b.
	if ev := c.put(key("c"), r); ev != 1 {
		t.Errorf("evicted = %d", ev)
	}
	if _, ok := c.get(key("b")); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get(key("a")); !ok {
		t.Error("a should survive (recently used)")
	}
	// Re-putting an existing key is a refresh, not growth.
	if ev := c.put(key("a"), r); ev != 0 || c.len() != 2 {
		t.Errorf("refresh: evicted=%d len=%d", ev, c.len())
	}
}

func TestPProfMounting(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())

	tsOff := httptest.NewServer(sv.Handler())
	defer tsOff.Close()
	resp, _ := getBody(t, tsOff.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}

	tsOn := httptest.NewServer(sv.HandlerWith(HandlerConfig{PProf: true}))
	defer tsOn.Close()
	resp, body := getBody(t, tsOn.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof on: status = %d", resp.StatusCode)
	}
	resp, _ = getBody(t, tsOn.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status = %d", resp.StatusCode)
	}
}

func TestRequestIDHeader(t *testing.T) {
	ts := testServer(t, false)
	resp, _ := getBody(t, ts.URL+"/healthz")
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id response header")
	}
}

// TestConcurrentCompleteAndScrape drives completions from many
// goroutines while scraping /metrics — the -race proof for the
// server's cache and metrics wiring.
func TestConcurrentCompleteAndScrape(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	sv.SetCacheCap(2) // force concurrent evictions too
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	exprs := []string{"ta~name", "ta~course", "student~department", "professor~name"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := `{"expr":"` + exprs[(w+i)%len(exprs)] + `"`
				if i%3 == 0 {
					body += `,"trace":true`
				}
				body += `}`
				resp, err := http.Post(ts.URL+"/complete", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(done)

	_, text := getBody(t, ts.URL+"/metrics")
	hits := metricValue(text, "pathcomplete_cache_hits_total")
	misses := metricValue(text, "pathcomplete_cache_misses_total")
	// Each worker traces 4 of its 10 requests (i%3==0). Traced
	// requests never perform a cache lookup, so they count neither as
	// a hit nor as a miss; the other 48 count exactly one of the two.
	if hits+misses != 48 {
		t.Errorf("hits(%g) + misses(%g) != 48 untraced requests", hits, misses)
	}
}
