package server

// The versioned /v1 surface. Every v1 response — success or failure —
// is one uniform envelope:
//
//	{"data": ..., "error": null, "meta": {"schema": ..., "generation": ...,
//	 "engine": "closure|search", "cacheHit": ..., "durationMs": ...}}
//
// with error responses carrying data: null and a machine-readable
// error object {"code", "message"} whose code is one of bad_request,
// unknown_schema, deadline, overloaded, internal. The v1 routes are
// served by the same handlers as the legacy ones: the response layer
// (respond / jsonError) dispatches on the /v1/ path prefix, so the
// pipeline — validation, admission, snapshot pinning, closure, cache,
// singleflight, search — is byte-identical across surfaces and only
// the rendering differs. Legacy routes keep working but answer with a
// Deprecation header, a successor Link, a bounded per-route metric,
// and a one-time log warning.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"pathcomplete/internal/closure"
	"pathcomplete/internal/obs"
	"pathcomplete/internal/pathexpr"
	"pathcomplete/internal/registry"
	"pathcomplete/internal/sdl"

	"log/slog"
)

// V1Paths lists every /v1 route pattern the server mounts, exactly as
// it appears in docs/openapi.yaml. The openapi golden test asserts
// the spec's path list and the mounted mux agree with this list, so a
// new /v1 route cannot ship undocumented (or documented but
// unmounted).
var V1Paths = []string{
	"/v1/complete",
	"/v1/completeBatch",
	"/v1/evaluate",
	"/v1/explain",
	"/v1/queries/slow",
	"/v1/schemas",
	"/v1/schemas/{name}",
	"/v1/schemas/reload",
	"/v1/sessions",
	"/v1/traces",
	"/v1/traces/{id}",
}

// APIError is the machine-readable error object of a v1 envelope.
type APIError struct {
	// Code is one of "bad_request", "unknown_schema", "not_found",
	// "deadline", "overloaded", "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the v1 surface.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownSchema = "unknown_schema"
	CodeNotFound      = "not_found"
	CodeDeadline      = "deadline"
	CodeOverloaded    = "overloaded"
	CodeInternal      = "internal"
)

// Meta is the response metadata of a v1 envelope.
type Meta struct {
	// ApiVersion is the major version of the response contract, "1" on
	// every v1 envelope — success and error alike — so a client can
	// verify which surface answered without inspecting the request URL.
	ApiVersion string `json:"apiVersion,omitempty"`
	// Schema and Generation identify the pinned snapshot, when the
	// endpoint is snapshot-scoped.
	Schema     string `json:"schema,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// Engine identifies the answering subsystem for completion
	// endpoints: "closure" or "search".
	Engine string `json:"engine,omitempty"`
	// CacheHit reports a memo-cache hit.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Constrained reports that the query's expression carried a gap
	// regex constraint or a pushed-down predicate — the annotated query
	// shapes that bypass the closure index and memoize under their own
	// cache keys.
	Constrained bool `json:"constrained,omitempty"`
	// TraceID is the hex trace ID of this request when it is being
	// recorded by the span pipeline — the key for /v1/traces/{id} and
	// the /metrics exemplars. Absent when the request was not selected.
	TraceID string `json:"traceId,omitempty"`
	// DurationMs is the server-side wall clock of the request.
	DurationMs float64 `json:"durationMs"`
}

// Envelope is the uniform body of every v1 response.
type Envelope struct {
	Data  any       `json:"data"`
	Error *APIError `json:"error"`
	Meta  *Meta     `json:"meta"`
}

// errCode maps an HTTP status to its v1 error code.
func errCode(status int) string {
	switch {
	case status == http.StatusNotFound:
		return CodeUnknownSchema
	case status == http.StatusTooManyRequests:
		return CodeOverloaded
	case status == http.StatusServiceUnavailable:
		return CodeDeadline
	case status >= 500:
		return CodeInternal
	default: // 400, 409, 413, 422
		return CodeBadRequest
	}
}

// isV1 reports whether the request arrived on the versioned surface.
func isV1(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// startKey carries the request arrival time through the context, so
// the envelope's durationMs covers the whole handler chain.
type startKeyType struct{}

var startKey startKeyType

func withStart(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), startKey, time.Now())))
	})
}

// sinceStart returns the elapsed wall clock of the request.
func sinceStart(r *http.Request) time.Duration {
	if t, ok := r.Context().Value(startKey).(time.Time); ok {
		return time.Since(t)
	}
	return 0
}

// respond writes a success body: the bare payload on the legacy
// surface, the envelope on /v1/. meta may be nil (an empty Meta with
// just durationMs is emitted).
func (sv *Server) respond(w http.ResponseWriter, r *http.Request, status int, data any, meta *Meta) {
	if !isV1(r) {
		sv.writeJSON(w, r, status, data)
		return
	}
	if meta == nil {
		meta = &Meta{}
	}
	meta.ApiVersion = APIVersion
	meta.TraceID = obs.SpanFromContext(r.Context()).TraceID()
	meta.DurationMs = float64(sinceStart(r)) / float64(time.Millisecond)
	sv.writeJSON(w, r, status, Envelope{Data: data, Meta: meta})
}

// APIVersion is the major version every v1 envelope stamps in
// meta.apiVersion.
const APIVersion = "1"

// completeMeta builds the envelope metadata for one completed query.
func completeMeta(sn *registry.Snapshot, c completed) *Meta {
	return &Meta{
		Schema:      sn.Name(),
		Generation:  sn.Generation(),
		Engine:      c.engine,
		CacheHit:    c.cached,
		Constrained: exprConstrained(c.expr),
	}
}

// exprConstrained reports whether the expression carries any gap regex
// constraint or pushed-down predicate.
func exprConstrained(e pathexpr.Expr) bool {
	for _, st := range e.Steps {
		if st.Constraint != "" || st.Pred != "" {
			return true
		}
	}
	return false
}

// SchemaDetailJSON is the data payload of GET /v1/schemas/{name}: the
// listing entry plus the closure status and the SDL text.
type SchemaDetailJSON struct {
	SchemaInfoJSON
	ClosureStatus closure.Status `json:"closureStatus"`
	// PersistStatus reports the schema's durable snapshot state
	// (enabled=false when the process runs without a persist store).
	PersistStatus *PersistStatusJSON `json:"persistStatus,omitempty"`
	SDL           string             `json:"sdl"`
}

// handleSchemaByName serves GET /v1/schemas/{name}. The legacy GET
// /schema endpoint is an alias of this resolution for the default (or
// ?schema=-named) schema, rendered as text/plain SDL; both route
// through resolveSchema so they can never disagree about which
// snapshot a name denotes.
func (sv *Server) handleSchemaByName(w http.ResponseWriter, r *http.Request) {
	sn, ok := sv.resolveSchema(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	defer sn.Release()
	var sb strings.Builder
	if err := sdl.Write(&sb, sn.Schema()); err != nil {
		sv.jsonError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	data := SchemaDetailJSON{
		SchemaInfoJSON: SchemaInfoJSON{
			Name:       sn.Name(),
			Generation: sn.Generation(),
			Classes:    sn.Schema().NumUserClasses(),
			Rels:       sn.Schema().NumRels(),
			Default:    sn.Name() == sv.reg.DefaultName(),
			Store:      sn.Store() != nil,
			Closure:    string(sn.ClosureStatus().State),
		},
		ClosureStatus: sn.ClosureStatus(),
		PersistStatus: sv.persistStatus(sn.Name(), sn.ClosureStatus().Restored),
		SDL:           sb.String(),
	}
	sv.respond(w, r, http.StatusOK, data, &Meta{Schema: sn.Name(), Generation: sn.Generation()})
}

// resolveSchema pins the named snapshot ("" means the registry
// default), answering the unknown-schema error itself. On success the
// caller must Release exactly once.
func (sv *Server) resolveSchema(w http.ResponseWriter, r *http.Request, name string) (*registry.Snapshot, bool) {
	sn, err := sv.reg.Acquire(name)
	if err != nil {
		if errors.Is(err, registry.ErrUnknownSchema) {
			sv.met.unknownSchema.Inc()
			sv.jsonError(w, r, http.StatusNotFound, err.Error())
		} else {
			sv.jsonError(w, r, http.StatusInternalServerError, err.Error())
		}
		return nil, false
	}
	return sn, true
}

// deprecatedSuccessor maps every legacy route to its v1 successor.
// Requests on these routes keep working but are answered with a
// Deprecation header (RFC 9745 boolean form), a successor Link, and a
// per-route deprecation count.
var deprecatedSuccessor = map[string]string{
	"/complete":       "/v1/complete",
	"/completeBatch":  "/v1/completeBatch",
	"/evaluate":       "/v1/evaluate",
	"/schemas":        "/v1/schemas",
	"/schemas/reload": "/v1/schemas/reload",
	"/schema":         "/v1/schemas/{name}",
}

// Legacy-route serving modes (SetLegacyRoutes, pathserve
// -legacy-routes).
const (
	// LegacyOn serves legacy routes with only the Deprecation and
	// successor Link headers — no Sunset, no warning log.
	LegacyOn = "on"
	// LegacyWarn (the default) additionally announces the retirement
	// date via an RFC 8594 Sunset header and logs a one-time warning
	// per route.
	LegacyWarn = "warn"
	// LegacyOff retires the legacy surface: requests get 410 Gone with
	// the legacy {"error": ...} body naming the v1 successor.
	LegacyOff = "off"
)

// LegacySunset is the announced retirement date of the legacy
// (pre-/v1) surface, in the RFC 8594 Sunset header's HTTP-date form.
const LegacySunset = "Thu, 31 Dec 2026 23:59:59 GMT"

// SetLegacyRoutes selects how the legacy (pre-/v1) routes are served:
// LegacyOn, LegacyWarn (the default), or LegacyOff. Call before
// serving traffic.
func (sv *Server) SetLegacyRoutes(mode string) error {
	switch mode {
	case LegacyOn, LegacyWarn, LegacyOff:
		sv.legacyRoutes = mode
		return nil
	}
	return fmt.Errorf("unknown legacy-routes mode %q (want on, warn, or off)", mode)
}

// legacyMode returns the configured legacy-route mode, defaulting to
// LegacyWarn.
func (sv *Server) legacyMode() string {
	if sv.legacyRoutes == "" {
		return LegacyWarn
	}
	return sv.legacyRoutes
}

// deprecate stamps legacy-route responses and counts them, honoring
// the configured mode: "on" stamps Deprecation + Link only, "warn"
// (default) adds the RFC 8594 Sunset date and a one-time log warning
// per route, "off" answers 410 Gone without serving. Every mode keeps
// the per-route metric, so operators can watch legacy traffic drain
// before flipping to off.
func (sv *Server) deprecate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if succ, ok := deprecatedSuccessor[r.URL.Path]; ok {
			mode := sv.legacyMode()
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "<"+succ+`>; rel="successor-version"`)
			if mode != LegacyOn {
				w.Header().Set("Sunset", LegacySunset)
			}
			sv.met.deprecated.With(r.URL.Path).Inc()
			if mode == LegacyOff {
				sv.jsonError(w, r, http.StatusGone,
					"legacy route "+r.URL.Path+" is retired: use "+succ)
				return
			}
			if mode == LegacyWarn {
				if _, warned := sv.depWarned.LoadOrStore(r.URL.Path, true); !warned && sv.logger != nil {
					sv.logger.LogAttrs(r.Context(), slog.LevelWarn, "deprecated route in use",
						slog.String("route", r.URL.Path),
						slog.String("successor", succ),
						slog.String("id", w.Header().Get(obs.RequestIDHeader)),
					)
				}
			}
		}
		next.ServeHTTP(w, r)
	})
}
