package server

// End-to-end tracing acceptance: one query with sampling forced via a
// W3C traceparent is followable across every surface — the /v1
// envelope's meta.traceId, the span tree on /v1/traces/{id}, the
// slow-query log, and the histogram exemplar on /metrics — with
// durations that agree between the surfaces. Plus the trace-surface
// envelope/error shapes and a -race drill of concurrent queries,
// scrapes, and hot reloads that must leak no spans.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/obs"
	"pathcomplete/internal/uni"
)

// forcedTraceparent is a fixed sampled client context: forcing the
// sampled flag guarantees retention, so the test can follow its own ID.
const (
	forcedTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	forcedTraceparent = "00-" + forcedTraceID + "-00f067aa0ba902b7-01"
)

// postTraced posts body with a sampled traceparent attached.
func postTraced(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, forcedTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp, readAll(t, resp)
}

// waitTrace fetches /v1/traces/{id} with a short retry: the root span
// finalizes after the response body is written, so the trace can lag
// the response by a scheduler beat.
func waitTrace(t *testing.T, base, id string) TraceDataJSON {
	t.Helper()
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode == http.StatusOK {
			var env testEnvelope
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("decode envelope: %v\n%s", err, body)
			}
			var td TraceDataJSON
			if err := json.Unmarshal(env.Data, &td); err != nil {
				t.Fatalf("decode trace: %v\n%s", err, body)
			}
			return td
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("trace %s never appeared on /v1/traces/{id}", id)
	return TraceDataJSON{}
}

// TraceDataJSON mirrors obs.TraceData's wire shape for decoding.
type TraceDataJSON struct {
	TraceID    string  `json:"traceId"`
	Name       string  `json:"name"`
	DurationMs float64 `json:"durationMs"`
	Status     int     `json:"status"`
	Reason     string  `json:"reason"`
	Spans      []struct {
		SpanID     string         `json:"spanId"`
		ParentID   string         `json:"parentId"`
		Name       string         `json:"name"`
		OffsetMs   float64        `json:"offsetMs"`
		DurationMs float64        `json:"durationMs"`
		Attrs      map[string]any `json:"attrs"`
		Error      string         `json:"error"`
	} `json:"spans"`
}

// TestTraceEndToEnd is the acceptance walk: forced-sample query →
// meta.traceId → span tree → exemplar, all carrying the same ID.
func TestTraceEndToEnd(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	ts := newTS(t, sv)

	resp, body := postTraced(t, ts+"/v1/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}

	// The response echoes the adopted trace ID on the wire and in meta.
	if tp := resp.Header.Get(obs.TraceparentHeader); !strings.Contains(tp, forcedTraceID) {
		t.Errorf("response traceparent = %q, want trace %s", tp, forcedTraceID)
	}
	env := decodeEnvelope(t, body)
	if env.Meta.TraceID != forcedTraceID {
		t.Fatalf("meta.traceId = %q, want %q", env.Meta.TraceID, forcedTraceID)
	}

	// The retained span tree covers the pipeline stages, parented under
	// the one root, with durations consistent with meta.durationMs.
	td := waitTrace(t, ts, forcedTraceID)
	if td.Reason != "sampled" || td.Status != http.StatusOK {
		t.Errorf("trace reason/status = %q/%d", td.Reason, td.Status)
	}
	if len(td.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	root := td.Spans[0]
	if root.Name != "POST /v1/complete" {
		t.Errorf("root span = %q", root.Name)
	}
	stages := map[string]bool{}
	for _, s := range td.Spans[1:] {
		stages[s.Name] = true
		if s.ParentID == "" {
			t.Errorf("span %q has no parent", s.Name)
		}
		if s.OffsetMs+s.DurationMs > td.DurationMs+5 {
			t.Errorf("span %q (%f+%fms) exceeds the trace's %fms",
				s.Name, s.OffsetMs, s.DurationMs, td.DurationMs)
		}
		if s.Name == "search" {
			if _, ok := s.Attrs["calls"]; !ok {
				t.Errorf("search span missing kernel stats: %+v", s.Attrs)
			}
			// Head-sampled searches bridge the kernel Tracer into
			// per-event counts.
			if v, ok := s.Attrs["events.enter"].(float64); !ok || v <= 0 {
				t.Errorf("search span events.enter = %v", s.Attrs["events.enter"])
			}
		}
	}
	for _, want := range []string{"admit", "snapshot", "cache", "singleflight", "search"} {
		if !stages[want] {
			t.Errorf("span tree missing stage %q (have %v)", want, stages)
		}
	}
	if root.Attrs[obs.AttrExpr] != "ta~name" || root.Attrs[obs.AttrShape] != "_~_" ||
		root.Attrs[obs.AttrSchema] != "university" || root.Attrs[obs.AttrEngine] != engineSearch {
		t.Errorf("root attrs = %+v", root.Attrs)
	}
	// The trace's duration and the envelope's duration time the same
	// request; allow generous slack for the middleware bracketing.
	if td.DurationMs+50 < env.Meta.DurationMs {
		t.Errorf("trace %.3fms shorter than meta.durationMs %.3fms", td.DurationMs, env.Meta.DurationMs)
	}

	// The latency histograms carry an exemplar referencing the trace —
	// on the OpenMetrics rendering only, which a scraper opts into via
	// the Accept header; the classic 0.0.4 text format cannot carry the
	// annotation without breaking stock parsers.
	mreq, err := http.NewRequest(http.MethodGet, ts+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	mreq.Header.Set("Accept", "application/openmetrics-text;version=1.0.0")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, mresp)
	if !strings.Contains(metrics, `# {trace_id="`+forcedTraceID+`"}`) {
		t.Error("/metrics carries no exemplar for the forced trace")
	}
	// A plain text-format scrape of the same registry must stay free of
	// exemplar syntax (a stock Prometheus parser rejects it).
	plainResp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if plain := readAll(t, plainResp); strings.Contains(plain, "# {") {
		t.Error("plain /metrics scrape carries exemplar syntax")
	}
	// Satellite: the runtime metrics ride the same scrape.
	for _, m := range []string{"go_goroutines", "go_memstats_heap_inuse_bytes",
		"go_gc_pause_nanoseconds_total", "pathcomplete_engine_pool_served_total"} {
		if !strings.Contains(metrics, m+" ") {
			t.Errorf("/metrics missing runtime metric %s", m)
		}
	}
}

// TestTraceSurfaceEnvelopes pins /v1/traces and /v1/queries/slow:
// list shape, limit handling, the not_found code, and the slow log.
func TestTraceSurfaceEnvelopes(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	// Everything sampled, everything slow: both surfaces fill from one
	// request.
	sv.SetTracing(obs.TraceConfig{SampleRate: 1, SlowThreshold: time.Nanosecond})
	ts := newTS(t, sv)

	resp, body := post(t, ts+"/v1/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Meta.TraceID == "" {
		t.Fatal("meta.traceId empty with SampleRate 1")
	}
	waitTrace(t, ts, env.Meta.TraceID)

	t.Run("traces list", func(t *testing.T) {
		resp, body := get(t, ts+"/v1/traces")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		lenv := decodeEnvelope(t, body)
		var out struct {
			Traces []TraceDataJSON `json:"traces"`
			Stats  obs.TraceStats  `json:"stats"`
		}
		if err := json.Unmarshal(lenv.Data, &out); err != nil {
			t.Fatalf("decode data: %v", err)
		}
		if len(out.Traces) == 0 || out.Stats.RootsEnded == 0 {
			t.Errorf("traces = %d, stats = %+v", len(out.Traces), out.Stats)
		}

		// ?limit bounds the list; a bad limit is a 400.
		resp, body = get(t, ts+"/v1/traces?limit=0")
		lenv = decodeEnvelope(t, body)
		if err := json.Unmarshal(lenv.Data, &out); err != nil || len(out.Traces) != 0 {
			t.Errorf("limit=0 returned %d traces (err %v)", len(out.Traces), err)
		}
		resp, body = get(t, ts+"/v1/traces?limit=bogus")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("limit=bogus status = %d: %s", resp.StatusCode, body)
		}
		if e := decodeEnvelope(t, body).Error; e == nil || e.Code != CodeBadRequest {
			t.Errorf("limit=bogus error = %+v", e)
		}
	})

	t.Run("trace not found", func(t *testing.T) {
		resp, body := get(t, ts+"/v1/traces/ffffffffffffffffffffffffffffffff")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		env := decodeEnvelope(t, body)
		if !isNullData(env.Data) {
			t.Errorf("data = %s on a miss", env.Data)
		}
		if env.Error == nil || env.Error.Code != CodeNotFound {
			t.Errorf("error = %+v, want code %q", env.Error, CodeNotFound)
		}
	})

	t.Run("slow queries", func(t *testing.T) {
		var out SlowQueriesResponse
		// The slow entry lands at root finalize; retry like waitTrace.
		for i := 0; i < 50 && len(out.Queries) == 0; i++ {
			resp, body := get(t, ts+"/v1/queries/slow")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %s", resp.StatusCode, body)
			}
			if err := json.Unmarshal(decodeEnvelope(t, body).Data, &out); err != nil {
				t.Fatalf("decode data: %v", err)
			}
			if len(out.Queries) == 0 {
				time.Sleep(10 * time.Millisecond)
			}
		}
		if out.ThresholdMs <= 0 {
			t.Errorf("thresholdMs = %v", out.ThresholdMs)
		}
		if len(out.Queries) == 0 {
			t.Fatal("slow log empty with a nanosecond threshold")
		}
		q := out.Queries[len(out.Queries)-1] // oldest = the completion above
		if q.Expr != "ta~name" || q.Shape != "_~_" || q.Schema != "university" {
			t.Errorf("slow query = %+v", q)
		}
		if q.TraceID == "" || len(q.Stages) == 0 {
			t.Errorf("slow query missing trace linkage: %+v", q)
		}
	})
}

// get is the GET twin of post.
func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp, readAll(t, resp)
}

// TestTraceHeadersOnLegacyRoutes: the request-ID and traceparent
// echoes cover the legacy surface too (satellite 3).
func TestTraceHeadersOnLegacyRoutes(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	ts := newTS(t, sv)

	req, err := http.NewRequest(http.MethodPost, ts+"/complete", strings.NewReader(`{"expr":"ta~name"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "test-req-42")
	req.Header.Set(obs.TraceparentHeader, forcedTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get(obs.RequestIDHeader); got != "test-req-42" {
		t.Errorf("X-Request-Id = %q, want the inbound ID echoed", got)
	}
	if tp := resp.Header.Get(obs.TraceparentHeader); !strings.Contains(tp, forcedTraceID) {
		t.Errorf("traceparent = %q, want trace %s", tp, forcedTraceID)
	}
	// The legacy trace is retained like any sampled trace, named by its
	// route.
	td := waitTrace(t, ts, forcedTraceID)
	if td.Spans[0].Name != "POST /complete" {
		t.Errorf("root span = %q", td.Spans[0].Name)
	}

	// An untraced request on the default pipeline records nothing and
	// carries no traceparent or meta.traceId.
	resp2, body := post(t, ts+"/v1/complete", `{"expr":"ta~name"}`)
	if resp2.Header.Get(obs.TraceparentHeader) != "" {
		t.Errorf("unsampled response grew a traceparent: %q", resp2.Header.Get(obs.TraceparentHeader))
	}
	if env := decodeEnvelope(t, body); env.Meta.TraceID != "" {
		t.Errorf("unsampled meta.traceId = %q", env.Meta.TraceID)
	}
}

// TestTraceReloadDrill runs queries (half of them sampled), /metrics
// scrapes, and schema hot reloads concurrently under -race, then
// checks the pipeline's books: no active spans, every root accounted
// to exactly one outcome.
func TestTraceReloadDrill(t *testing.T) {
	sv, ts, dir := multiServer(t, map[string]string{"alpha": msSchemaV1})
	sv.SetTracing(obs.TraceConfig{SampleRate: 0.5, SlowThreshold: 50 * time.Millisecond, BufferSize: 32})

	const clients = 4
	var stop atomic.Bool
	var non200 atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, _ := post(t, ts.URL+"/v1/complete?schema=alpha", `{"expr":"a~name"}`)
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // concurrent scraper: exemplars + trace list under load
		defer wg.Done()
		for !stop.Load() {
			get(t, ts.URL+"/metrics")
			get(t, ts.URL+"/v1/traces")
		}
	}()

	for g := 0; g < 20; g++ {
		text := msSchemaV1
		if g%2 == 0 {
			text = msSchemaV2
		}
		msWriteDir(t, dir, map[string]string{"alpha": text})
		if resp, body := post(t, ts.URL+"/v1/schemas/reload", `{}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status = %d: %s", g, resp.StatusCode, body)
		}
	}
	stop.Store(true)
	wg.Wait()

	if non200.Load() != 0 {
		t.Errorf("%d non-200 responses during the drill", non200.Load())
	}
	// Settle, then audit the books.
	deadline := time.Now().Add(5 * time.Second)
	var st obs.TraceStats
	for {
		st = sv.Tracing().Stats()
		if st.ActiveSpans == 0 && st.RootsStarted == st.RootsEnded || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.ActiveSpans != 0 {
		t.Errorf("leaked %d active spans", st.ActiveSpans)
	}
	if st.RootsStarted != st.RootsEnded {
		t.Errorf("roots: %d started, %d ended", st.RootsStarted, st.RootsEnded)
	}
	if got := st.KeptSampled + st.KeptSlow + st.KeptError + st.Discarded; got != st.RootsEnded {
		t.Errorf("retention accounting = %d, want %d (%+v)", got, st.RootsEnded, st)
	}
	if st.KeptSampled == 0 {
		t.Error("no sampled traces across the whole drill")
	}
	t.Logf("drill stats: %+v", st)
}
