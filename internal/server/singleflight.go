package server

// Singleflight collapsing of concurrent identical /complete requests.
// A cache stampede — N clients asking for the same cold (expression, E)
// at once — would otherwise run N identical searches and burn N
// admission slots on duplicate work. Instead the first request becomes
// the leader and runs the search; the rest wait on its outcome and
// share the single result (counted by pathcomplete_singleflight_shared).
// The implementation is a minimal stdlib-only analogue of
// golang.org/x/sync/singleflight, specialized to the completion key.
//
// The leader runs under its own request context, so its deadline
// governs the shared search; followers that time out or disconnect
// while waiting abandon the flight individually.

import (
	"context"
	"errors"
	"net/http"
	"sync"
)

// flightCall is one in-flight shared computation.
type flightCall struct {
	done   chan struct{} // closed when the leader finishes
	c      completed
	status int
	err    error
}

// flightGroup deduplicates concurrent calls per cacheKey.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[cacheKey]*flightCall)}
}

// do executes fn once per key among concurrent callers. The first
// caller (the leader) runs fn; concurrent callers with the same key
// wait for the leader and share its outcome, reporting shared=true.
// A waiting caller whose ctx ends first returns ctx.Err() with
// shared=true and a zero completed.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (completed, int, error)) (c completed, status int, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.c, call.status, call.err, true
		case <-ctx.Done():
			return completed{}, 0, ctx.Err(), true
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	// The flight must settle even if fn panics (the panic-recovery
	// middleware will answer the leader's request; followers must not
	// be left waiting on a channel nobody will close).
	finished := false
	defer func() {
		if !finished {
			call.c, call.status, call.err = completed{}, http.StatusInternalServerError,
				errors.New("internal error: in-flight query failed")
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(call.done)
	}()
	call.c, call.status, call.err = fn()
	finished = true
	return call.c, call.status, call.err, false
}
