package server

// The reload-during-build drill: hot reloads land while all-pairs
// closure builds are still warming, under concurrent query traffic.
// Every superseded snapshot's build must cancel, every query must
// answer 200 with an answer some generation actually serves, and when
// the dust settles the byte budget must account exactly the surviving
// index — no leaked reservations, no leaked snapshots. Run under
// -race in CI.

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcomplete/internal/closure"
)

func TestClosureReloadDuringBuildDrill(t *testing.T) {
	sv, ts, dir := multiServer(t, map[string]string{"alpha": msSchemaV1})
	sv.EnableClosure(2, 1<<30)
	// The boot snapshot predates EnableClosure wiring in multiServer's
	// LoadDir; EnableClosure warms it retroactively. Let it settle so
	// the drill starts from a ready index.
	if st := waitClosure(t, sv, "alpha"); st.State != closure.StateReady {
		t.Fatalf("pre-drill closure = %+v, want ready", st)
	}

	const (
		generations = 40
		clients     = 4
	)
	var (
		stop     atomic.Bool
		non200   atomic.Int64
		badBody  atomic.Int64
		queries  atomic.Int64
		closureN atomic.Int64
		searchN  atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, body := post(t, ts.URL+"/v1/complete?schema=alpha", `{"expr":"a~name"}`)
				queries.Add(1)
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
					continue
				}
				var env testEnvelope
				if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error != nil {
					badBody.Add(1)
					continue
				}
				var out CompleteResponse
				if err := json.Unmarshal(env.Data, &out); err != nil || len(out.Completions) != 1 {
					badBody.Add(1)
					continue
				}
				if p := out.Completions[0].Path; p != msAnswerV1 && p != msAnswerV2 {
					badBody.Add(1)
					continue
				}
				switch env.Meta.Engine {
				case engineClosure:
					closureN.Add(1)
				case engineSearch:
					searchN.Add(1)
				default:
					badBody.Add(1)
				}
			}
		}()
	}

	// Reloader: alternate the schema text every generation so answers
	// identify the snapshot that served them, reloading fast enough
	// that most builds are still warming when superseded.
	for g := 0; g < generations; g++ {
		text := msSchemaV1
		if g%2 == 0 {
			text = msSchemaV2
		}
		msWriteDir(t, dir, map[string]string{"alpha": text})
		resp, body := post(t, ts.URL+"/v1/schemas/reload", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status = %d: %s", g, resp.StatusCode, body)
		}
	}
	stop.Store(true)
	wg.Wait()

	if non200.Load() != 0 || badBody.Load() != 0 {
		t.Errorf("drill: %d non-200s, %d bad bodies across %d queries",
			non200.Load(), badBody.Load(), queries.Load())
	}
	t.Logf("drill: %d queries (%d closure, %d search) across %d generations",
		queries.Load(), closureN.Load(), searchN.Load(), generations)

	// Settle: the final generation's build finishes (ready), every
	// superseded handle has cancelled, and the budget accounts exactly
	// the one surviving index.
	st := waitClosure(t, sv, "alpha")
	if st.State != closure.StateReady {
		t.Fatalf("post-drill closure = %+v, want ready", st)
	}
	b := sv.reg.ClosureBuilder()
	deadline := time.Now().Add(5 * time.Second)
	for b.Budget().Used() != st.Bytes && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond) // superseded snapshots may still be draining
	}
	if got := b.Budget().Used(); got != st.Bytes {
		t.Errorf("budget used = %d after drill, want %d (the live index): leaked reservations", got, st.Bytes)
	}
	for sv.reg.Live() != len(sv.reg.Names()) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got, want := sv.reg.Live(), len(sv.reg.Names()); got != want {
		t.Errorf("Live() = %d after drain, want %d (snapshot leak)", got, want)
	}
}
