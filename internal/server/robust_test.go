package server

// Tests for the hardened serving path: input validation, admission
// control (shed and queue-timeout), per-request deadlines degrading to
// partial answers, body-size caps, panic isolation, singleflight
// collapsing, and the cache-accounting and encode-failure fixes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/faultinject"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/uni"
)

// slowSchema builds a deterministic layered schema — l layers of w
// classes, fully associated layer to layer, "label" attributes on the
// last layer — whose completion search for l0w0~label costs w^(l-1)
// equally-labeled paths: nothing prunes, so the full search takes long
// enough (hundreds of ms and up) for a request deadline to expire
// mid-traversal.
func slowSchema(t testing.TB, w, l int) *schema.Schema {
	t.Helper()
	b := schema.NewBuilder(fmt.Sprintf("layered-%dx%d", w, l))
	name := func(i, j int) string { return fmt.Sprintf("l%dw%d", i, j) }
	for i := 0; i < l; i++ {
		for j := 0; j < w; j++ {
			b.Class(name(i, j))
		}
	}
	k := 0
	for i := 0; i+1 < l; i++ {
		for j := 0; j < w; j++ {
			for j2 := 0; j2 < w; j2++ {
				b.Assoc(name(i, j), name(i+1, j2), fmt.Sprintf("as%d", k), fmt.Sprintf("sa%d", k))
				k++
			}
		}
	}
	for j := 0; j < w; j++ {
		b.Attr(name(l-1, j), "label", "C")
	}
	s, err := b.Build()
	if err != nil {
		t.Fatalf("slowSchema(%d, %d): %v", w, l, err)
	}
	return s
}

// newTestSrv returns a server plus an httptest wrapper over its
// handler, with the in-package *Server exposed for direct assertions
// on gates, caches, and counters.
func newTestSrv(t *testing.T, s *schema.Schema) (*Server, *httptest.Server) {
	t.Helper()
	sv := New(s, nil, core.Exact())
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return sv, ts
}

func TestValidationRejects(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	sv.SetLimits(Limits{MaxExprLen: 32, MaxE: 8, MaxTraceEvents: 100})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"missing expr", `{}`, http.StatusBadRequest},
		{"expr too long", `{"expr":"` + strings.Repeat("a", 64) + `"}`, http.StatusBadRequest},
		{"e too big", `{"expr":"ta~name","e":9}`, http.StatusBadRequest},
		{"e negative", `{"expr":"ta~name","e":-1}`, http.StatusBadRequest},
		{"traceLimit too big", `{"expr":"ta~name","trace":true,"traceLimit":101}`, http.StatusBadRequest},
		{"traceLimit negative", `{"expr":"ta~name","traceLimit":-5}`, http.StatusBadRequest},
		{"timeoutMs negative", `{"expr":"ta~name","timeoutMs":-1}`, http.StatusBadRequest},
		{"malformed JSON", `{"expr":`, http.StatusBadRequest},
		{"unparsable expr", `{"expr":"ta..name"}`, http.StatusBadRequest},
		{"within bounds", `{"expr":"ta~name","e":8,"timeoutMs":5000}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/complete", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			// Every answer on the hardened path is valid JSON.
			var m map[string]any
			if err := json.Unmarshal([]byte(body), &m); err != nil {
				t.Fatalf("body is not JSON: %v\n%s", err, body)
			}
			if tc.wantStatus != http.StatusOK {
				if msg, _ := m["error"].(string); msg == "" {
					t.Errorf("error body missing \"error\": %s", body)
				}
			}
		})
	}
}

func TestAdmissionShed429(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	// One slot, no queue: with the slot held, the next request sheds.
	sv.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: -1})
	if sv.gate.acquire(context.Background()) != admitOK {
		t.Fatal("could not occupy the only admission slot")
	}
	resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, body)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "overloaded") {
		t.Errorf("429 body = %s", body)
	}
	if m["retryAfterSeconds"].(float64) != 1 {
		t.Errorf("retryAfterSeconds = %v", m["retryAfterSeconds"])
	}
	if got := sv.met.sheds.Value(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}

	// Releasing the slot restores service.
	sv.gate.release()
	resp, body = post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d (body %s)", resp.StatusCode, body)
	}
}

func TestAdmissionQueueTimeout503(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	// One slot with a queue: the next request waits, its deadline
	// expires, and it is answered 503 (not 429 — it was queued, not
	// shed).
	sv.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: 4})
	if sv.gate.acquire(context.Background()) != admitOK {
		t.Fatal("could not occupy the only admission slot")
	}
	defer sv.gate.release()
	resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name","timeoutMs":20}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("503 body is not JSON: %v\n%s", err, body)
	}
	if got := sv.met.timeouts.Value(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// TestTimeoutDegradesToPartial is the acceptance scenario: a request
// whose timeoutMs expires mid-search gets HTTP 200 with the valid
// best-so-far completions and a non-empty stop reason — never a 5xx.
func TestTimeoutDegradesToPartial(t *testing.T) {
	sv, ts := newTestSrv(t, slowSchema(t, 4, 8))
	resp, body := post(t, ts.URL+"/complete", `{"expr":"l0w0~label","timeoutMs":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var out CompleteResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if !out.Aborted || out.StopReason != string(core.StopDeadline) {
		t.Fatalf("aborted=%v stopReason=%q, want an aborted deadline stop", out.Aborted, out.StopReason)
	}
	if len(out.Completions) == 0 {
		t.Error("partial result carries no completions (search had time to offer thousands)")
	}
	for _, c := range out.Completions {
		if !strings.HasPrefix(c.Path, "l0w0") || !strings.HasSuffix(c.Path, ".label") {
			t.Errorf("partial completion %q is not a valid root-to-label path", c.Path)
		}
	}
	if got := sv.met.timeouts.Value(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	// Partial results are never memoized: a rerun with a generous
	// budget must run fresh and not be served the truncated answer.
	if n := sv.cache.len(); n != 0 {
		t.Errorf("aborted result was cached (%d entries)", n)
	}
	resp2, body2 := post(t, ts.URL+"/complete", `{"expr":"l0w0~label","timeoutMs":60}`)
	var out2 CompleteResponse
	if err := json.Unmarshal([]byte(body2), &out2); err != nil {
		t.Fatalf("decode rerun: %v (status %d)", err, resp2.StatusCode)
	}
	if out2.Cached {
		t.Error("rerun was served from cache after an aborted search")
	}
}

func TestBodyTooLarge413(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	sv.SetLimits(Limits{MaxBodyBytes: 128})
	big := `{"expr":"` + strings.Repeat("x", 1024) + `"}`
	resp, body := post(t, ts.URL+"/complete", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("413 body is not JSON: %v\n%s", err, body)
	}
}

func TestPanicRecovery(t *testing.T) {
	if err := faultinject.ArmSpec("panic=1,seed=1,points=server.complete"); err != nil {
		t.Fatalf("ArmSpec: %v", err)
	}
	defer faultinject.Disarm()
	var logBuf bytes.Buffer
	sv := New(uni.New(), nil, core.Exact())
	ts := httptest.NewServer(sv.HandlerWith(HandlerConfig{
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil)),
	}))
	defer ts.Close()

	resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("500 body is not JSON: %v\n%s", err, body)
	}
	if m["error"] != "internal error" {
		t.Errorf("500 body = %s", body)
	}
	if got := sv.met.panicsRecovered.Value(); got != 1 {
		t.Errorf("panicsRecovered = %d, want 1", got)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "panic recovered") || !strings.Contains(logged, "injected panic at server.complete") {
		t.Errorf("panic not logged:\n%s", logged)
	}

	// The process keeps serving: disarm and the same request succeeds.
	faultinject.Disarm()
	resp, body = post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after disarm: status = %d (body %s)", resp.StatusCode, body)
	}
}

// TestSingleflightGroup pins the collapsing contract deterministically:
// followers that arrive while the leader runs share its result, and a
// follower whose context ends first abandons the flight alone.
func TestSingleflightGroup(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{expr: "k", e: 2}
	started := make(chan struct{})
	unblock := make(chan struct{})
	want := completed{cached: true}

	var leaderC completed
	var leaderShared bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var status int
		var err error
		leaderC, status, err, leaderShared = g.do(context.Background(), key, func() (completed, int, error) {
			close(started)
			<-unblock
			return want, http.StatusOK, nil
		})
		if status != http.StatusOK || err != nil {
			t.Errorf("leader: status=%d err=%v", status, err)
		}
	}()
	<-started

	// A follower with an already-ended context abandons the flight.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, status, err, shared := g.do(ctx, key, func() (completed, int, error) {
		t.Error("canceled follower ran the search")
		return completed{}, 0, nil
	})
	if !shared || err == nil || status != 0 {
		t.Errorf("canceled follower: shared=%v status=%d err=%v", shared, status, err)
	}

	// A patient follower shares the leader's result.
	wg.Add(1)
	var followerC completed
	var followerShared bool
	go func() {
		defer wg.Done()
		var status int
		var err error
		followerC, status, err, followerShared = g.do(context.Background(), key, func() (completed, int, error) {
			t.Error("follower ran the search")
			return completed{}, 0, nil
		})
		if status != http.StatusOK || err != nil {
			t.Errorf("follower: status=%d err=%v", status, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	close(unblock)
	wg.Wait()
	if leaderShared {
		t.Error("leader reported shared")
	}
	if !followerShared || followerC.cached != want.cached {
		t.Errorf("follower: shared=%v c=%+v", followerShared, followerC)
	}
	if leaderC.cached != want.cached {
		t.Errorf("leader result %+v", leaderC)
	}

	// The flight is gone: a fresh call runs its own search.
	_, _, _, shared = g.do(context.Background(), key, func() (completed, int, error) {
		return completed{}, http.StatusOK, nil
	})
	if shared {
		t.Error("post-flight call reported shared")
	}
}

// TestSingleflightPanicSettles: a panicking leader must not strand its
// followers — they get a 500 outcome and the flight is cleaned up.
func TestSingleflightPanicSettles(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{expr: "boom", e: 2}
	started := make(chan struct{})
	proceed := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // stand in for the recovery middleware
		g.do(context.Background(), key, func() (completed, int, error) {
			close(started)
			<-proceed
			panic("leader exploded")
		})
	}()
	<-started

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, status, err, shared := g.do(context.Background(), key, func() (completed, int, error) {
			t.Error("follower ran the search")
			return completed{}, 0, nil
		})
		if !shared || status != http.StatusInternalServerError || err == nil {
			t.Errorf("follower of panicked leader: shared=%v status=%d err=%v", shared, status, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(proceed)
	wg.Wait()

	g.mu.Lock()
	left := len(g.m)
	g.mu.Unlock()
	if left != 0 {
		t.Errorf("%d flights leaked after a panic", left)
	}
}

// TestSingleflightOverHTTP drives the collapse end to end: concurrent
// identical cold requests against a slow search share one result.
func TestSingleflightOverHTTP(t *testing.T) {
	sv, ts := newTestSrv(t, slowSchema(t, 4, 8))
	const followers = 3
	body := `{"expr":"l0w0~label"}`

	var wg sync.WaitGroup
	results := make([]CompleteResponse, followers+1)
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		_, b := post(t, ts.URL+"/complete", body)
		errs[0] = json.Unmarshal([]byte(b), &results[0])
	}()
	// Launch the followers only once the leader's flight is registered
	// (a blind sleep races a fast machine: the search must merely
	// outlive the followers' local round trips, not the sleep).
	for deadline := time.Now().Add(5 * time.Second); ; {
		sv.flights.mu.Lock()
		inFlight := len(sv.flights.m)
		sv.flights.mu.Unlock()
		if inFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader flight never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, b := post(t, ts.URL+"/complete", body)
			errs[i] = json.Unmarshal([]byte(b), &results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := sv.met.singleflightShared.Value(); got == 0 {
		t.Error("no request shared the in-flight search")
	}
	if got := sv.met.searches.Value(); got != 1 {
		t.Errorf("searches = %d, want 1 (the stampede collapsed)", got)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i].Completions) != len(results[0].Completions) {
			t.Errorf("request %d: %d completions, leader had %d",
				i, len(results[i].Completions), len(results[0].Completions))
		}
	}
}

// TestCacheMissAccounting pins the satellite fix: traced requests
// bypass the cache entirely and must count neither a hit nor a miss.
func TestCacheMissAccounting(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	read := func() (hits, misses uint64) {
		return sv.met.cacheHits.Value(), sv.met.cacheMisses.Value()
	}

	// A traced request runs a fresh search without a cache lookup: it
	// counts neither a hit nor a miss (it does store its result).
	post(t, ts.URL+"/complete", `{"expr":"ta~name","trace":true}`)
	if h, m := read(); h != 0 || m != 0 {
		t.Fatalf("after traced request: hits=%d misses=%d, want 0/0", h, m)
	}
	// An untraced request for what the traced search stored is a hit.
	post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if h, m := read(); h != 1 || m != 0 {
		t.Fatalf("after request warmed by trace: hits=%d misses=%d, want 1/0", h, m)
	}
	// A genuinely cold untraced request is a miss...
	post(t, ts.URL+"/complete", `{"expr":"ta~credits"}`)
	if h, m := read(); h != 1 || m != 1 {
		t.Fatalf("after cold request: hits=%d misses=%d, want 1/1", h, m)
	}
	// ...and its rerun a hit.
	post(t, ts.URL+"/complete", `{"expr":"ta~credits"}`)
	if h, m := read(); h != 2 || m != 1 {
		t.Fatalf("after warm request: hits=%d misses=%d, want 2/1", h, m)
	}
	// Another traced request still counts neither.
	post(t, ts.URL+"/complete", `{"expr":"ta~credits","trace":true}`)
	if h, m := read(); h != 2 || m != 1 {
		t.Fatalf("after second traced request: hits=%d misses=%d, want 2/1", h, m)
	}
}

// TestWriteJSONEncodeFailure pins the satellite fix: an unencodable
// response body is counted and logged, not silently dropped.
func TestWriteJSONEncodeFailure(t *testing.T) {
	var logBuf bytes.Buffer
	sv := New(uni.New(), nil, core.Exact())
	sv.logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)

	sv.writeJSON(w, r, http.StatusOK, map[string]any{"f": func() {}})
	if got := sv.met.encodeFailures.Value(); got != 1 {
		t.Errorf("encodeFailures = %d, want 1", got)
	}
	if logged := logBuf.String(); !strings.Contains(logged, "response encode failed") {
		t.Errorf("encode failure not logged:\n%s", logged)
	}

	// The healthy path does not count.
	sv.writeJSON(httptest.NewRecorder(), r, http.StatusOK, map[string]any{"ok": true})
	if got := sv.met.encodeFailures.Value(); got != 1 {
		t.Errorf("encodeFailures after healthy write = %d, want 1", got)
	}
}

// TestInflightGauge: the admission gauge rises while a search holds a
// slot and settles back to zero.
func TestInflightGauge(t *testing.T) {
	sv, ts := newTestSrv(t, slowSchema(t, 4, 7))
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, ts.URL+"/complete", `{"expr":"l0w0~label","timeoutMs":200}`)
	}()
	// Sample while the bounded search is in flight.
	deadline := time.Now().Add(2 * time.Second)
	seen := false
	for time.Now().Before(deadline) {
		if sv.met.inflight.Value() == 1 {
			seen = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if !seen {
		t.Error("inflight gauge never reached 1 during a search")
	}
	if got := sv.met.inflight.Value(); got != 0 {
		t.Errorf("inflight after completion = %d, want 0", got)
	}
}
