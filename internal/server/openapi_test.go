package server

// Golden agreement between docs/openapi.yaml, the exported V1Paths
// list, and the routes the mux actually serves. The spec is parsed
// with plain string scanning (the repo takes no YAML dependency): a
// path is any "  /v1/...:" line under the top-level "paths:" key.

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"

	"pathcomplete/internal/core"
	"pathcomplete/internal/uni"
)

// specPaths extracts the path keys of docs/openapi.yaml.
func specPaths(t *testing.T) []string {
	t.Helper()
	f, err := os.Open("../../docs/openapi.yaml")
	if err != nil {
		t.Fatalf("open spec: %v", err)
	}
	defer f.Close()
	var out []string
	inPaths := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#"):
			continue
		case line == "paths:":
			inPaths = true
		case inPaths && strings.HasPrefix(line, "  /") && strings.HasSuffix(strings.TrimSpace(line), ":"):
			out = append(out, strings.TrimSuffix(strings.TrimSpace(line), ":"))
		case inPaths && len(line) > 0 && line[0] != ' ':
			inPaths = false // a new top-level key ends the paths block
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan spec: %v", err)
	}
	return out
}

// TestOpenAPIPathsMatchV1Paths: the spec documents exactly the routes
// V1Paths declares.
func TestOpenAPIPathsMatchV1Paths(t *testing.T) {
	got := specPaths(t)
	want := append([]string(nil), V1Paths...)
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("openapi.yaml paths disagree with server.V1Paths:\n spec:\n  %s\n code:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestV1PathsAreServed: every declared v1 route is actually mounted —
// requesting it (with {name} bound to a served schema) never hits the
// mux's 404 fallthrough.
func TestV1PathsAreServed(t *testing.T) {
	sv := New(uni.New(), nil, core.Paper())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	schemaName := sv.SchemaRegistry().DefaultName()
	for _, p := range V1Paths {
		path := strings.ReplaceAll(p, "{name}", schemaName)
		method := http.MethodGet
		switch p {
		case "/v1/complete", "/v1/completeBatch", "/v1/evaluate", "/v1/schemas/reload":
			method = http.MethodPost
		}
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(`{}`))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		resp.Body.Close()
		// Anything but the mux's own 404/405 means the route is mounted
		// (handlers may legitimately reject the empty body with 400/409,
		// or answer 404 unknown_schema for an unserved name — but that
		// carries a JSON body, not net/http's text fallthrough).
		if resp.StatusCode == http.StatusNotFound && !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
			t.Errorf("%s %s: mux 404 — declared in V1Paths but not mounted", method, p)
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: 405 — mounted under a different method than the spec documents", method, p)
		}
	}
}
