package server

// Goldens for the richer-gap-semantics surface: the /v1/explain
// provenance view (wire-level replay: every step chains through the
// CON table to the ranked label, every step's edge appears in the
// support set), the meta.apiVersion and meta.constrained stamps, the
// legacy-route serving modes, and the pre-upgrade unknown-schema 404
// on /v1/sessions.

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"pathcomplete/internal/core"
	"pathcomplete/internal/uni"
)

// decodeExplain unwraps a /v1/explain envelope.
func decodeExplain(t *testing.T, body string) (testEnvelope, ExplainResponse) {
	t.Helper()
	env := decodeEnvelope(t, body)
	var out ExplainResponse
	if err := json.Unmarshal(env.Data, &out); err != nil {
		t.Fatalf("decode explain data: %v\n%s", err, body)
	}
	return env, out
}

// checkReplay verifies the wire-level provenance contract of one
// explain payload: steps chain (each row's prevConn is the previous
// row's conn), the final row is the ranked label, and every traversed
// edge appears in the support listing.
func checkReplay(t *testing.T, out ExplainResponse) {
	t.Helper()
	support := map[int]bool{}
	for _, e := range out.SupportEdges {
		support[e.Rel] = true
	}
	for _, c := range out.Completions {
		if len(c.Steps) == 0 {
			t.Errorf("%s: no steps", c.Path)
			continue
		}
		for i, st := range c.Steps {
			if i > 0 && st.PrevConn != c.Steps[i-1].Conn {
				t.Errorf("%s: step %d prevConn %q does not chain from %q",
					c.Path, i, st.PrevConn, c.Steps[i-1].Conn)
			}
			if out.Support != "" && !support[st.Rel] {
				t.Errorf("%s: step %d edge %d missing from supportEdges", c.Path, i, st.Rel)
			}
		}
		last := c.Steps[len(c.Steps)-1]
		if last.Conn != c.Conn || last.SemLen != c.SemLen {
			t.Errorf("%s: replay ends at (%s, %d), ranked label is (%s, %d)",
				c.Path, last.Conn, last.SemLen, c.Conn, c.SemLen)
		}
		if c.Edges == "" || c.Edges == "0" {
			t.Errorf("%s: empty edge bitmap %q", c.Path, c.Edges)
		}
		if c.WhyRanked == "" {
			t.Errorf("%s: empty whyRanked", c.Path)
		}
	}
}

// TestV1ExplainEnvelope pins the /v1/explain success shape on both
// methods: the data payload carries the same completions as
// /v1/complete in the same order, each with a replayable derivation,
// and the envelope meta stamps apiVersion.
func TestV1ExplainEnvelope(t *testing.T) {
	ts := testServer(t, false)

	// The baseline answers, for cross-endpoint agreement.
	_, cbody := post(t, ts.URL+"/v1/complete", `{"expr":"ta~name"}`)
	var cout CompleteResponse
	if err := json.Unmarshal(decodeEnvelope(t, cbody).Data, &cout); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/explain", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	env, out := decodeExplain(t, body)
	if env.Error != nil {
		t.Fatalf("error = %+v on success", env.Error)
	}
	if env.Meta.ApiVersion != APIVersion {
		t.Errorf("meta.apiVersion = %q, want %q", env.Meta.ApiVersion, APIVersion)
	}
	if env.Meta.Constrained {
		t.Error("meta.constrained = true on an unconstrained query")
	}
	if out.Expr != "ta~name" || out.Schema != "university" || out.Generation == 0 {
		t.Errorf("explain header = %+v", out)
	}
	if out.Constrained {
		t.Error("data.constrained = true on an unconstrained query")
	}
	if len(out.Completions) != len(cout.Completions) {
		t.Fatalf("explain has %d completions, complete has %d", len(out.Completions), len(cout.Completions))
	}
	for i, c := range out.Completions {
		if c.Rank != i+1 {
			t.Errorf("completion %d rank = %d", i, c.Rank)
		}
		if c.Path != cout.Completions[i].Path || c.Conn != cout.Completions[i].Conn ||
			c.SemLen != cout.Completions[i].SemLen {
			t.Errorf("completion %d diverges from /v1/complete: %+v vs %+v",
				i, c, cout.Completions[i])
		}
	}
	if out.Support == "" || out.Support == "0" || len(out.SupportEdges) == 0 {
		t.Fatalf("support missing: %q %v", out.Support, out.SupportEdges)
	}
	for _, e := range out.SupportEdges {
		if e.From == "" || e.To == "" || e.Conn == "" {
			t.Errorf("underspecified support edge %+v", e)
		}
	}
	checkReplay(t, out)

	// The GET form answers identically.
	gresp, err := http.Get(ts.URL + "/v1/explain?expr=ta~name")
	if err != nil {
		t.Fatal(err)
	}
	gbody := readAll(t, gresp)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d: %s", gresp.StatusCode, gbody)
	}
	_, gout := decodeExplain(t, gbody)
	if !reflect.DeepEqual(gout, out) {
		t.Errorf("GET and POST explains diverge:\n GET: %+v\n POST: %+v", gout, out)
	}
}

// TestV1ExplainConstrained: a regex-constrained gap explains with
// meta.constrained = true, engine = search (annotated queries never
// hit the closure index), completions that are a subset of the
// unconstrained answer, and a derivation that still replays.
func TestV1ExplainConstrained(t *testing.T) {
	ts := testServer(t, false)

	_, ubody := post(t, ts.URL+"/v1/explain", `{"expr":"ta~name"}`)
	_, uout := decodeExplain(t, ubody)
	unconstrained := map[string]bool{}
	for _, c := range uout.Completions {
		unconstrained[c.Path] = true
	}

	resp, body := post(t, ts.URL+"/v1/explain", `{"expr":"ta~(grad.*)~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	env, out := decodeExplain(t, body)
	if !env.Meta.Constrained || !out.Constrained {
		t.Errorf("constrained not stamped: meta=%v data=%v", env.Meta.Constrained, out.Constrained)
	}
	if env.Meta.Engine != engineSearch {
		t.Errorf("meta.engine = %q, want %q", env.Meta.Engine, engineSearch)
	}
	if len(out.Completions) == 0 || len(out.Completions) >= len(uout.Completions) {
		t.Fatalf("constrained completions = %d, want a proper non-empty subset of %d",
			len(out.Completions), len(uout.Completions))
	}
	for _, c := range out.Completions {
		if !unconstrained[c.Path] {
			t.Errorf("constrained answer %s not in the unconstrained set", c.Path)
		}
		if !strings.Contains(c.Path, "grad") {
			t.Errorf("answer %s escapes the grad.* constraint", c.Path)
		}
	}
	checkReplay(t, out)

	// A pushed-down predicate also stamps constrained on /v1/complete.
	_, pbody := post(t, ts.URL+"/v1/complete", `{"expr":"ta~name[self = \"x\"]"}`)
	penv := decodeEnvelope(t, pbody)
	if !penv.Meta.Constrained {
		t.Error("meta.constrained = false on a predicate query")
	}
}

// TestV1ExplainErrors: the endpoint speaks the uniform error envelope
// on both methods.
func TestV1ExplainErrors(t *testing.T) {
	ts := testServer(t, false)
	cases := []struct {
		name       string
		get        string
		post       string
		wantStatus int
		wantCode   string
	}{
		{"missing expr", "/v1/explain", "", http.StatusBadRequest, CodeBadRequest},
		{"bad e", "/v1/explain?expr=ta~name&e=zero", "", http.StatusBadRequest, CodeBadRequest},
		{"unknown schema", "/v1/explain?schema=nope&expr=ta~name", "", http.StatusNotFound, CodeUnknownSchema},
		{"unresolvable root", "/v1/explain?expr=nosuchclass~name", "", http.StatusUnprocessableEntity, CodeBadRequest},
		{"malformed body", "", `{"expr":`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body string
			if tc.post != "" {
				resp, b := post(t, ts.URL+"/v1/explain", tc.post)
				status, body = resp.StatusCode, b
			} else {
				resp, err := http.Get(ts.URL + tc.get)
				if err != nil {
					t.Fatal(err)
				}
				status, body = resp.StatusCode, readAll(t, resp)
			}
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", status, tc.wantStatus, body)
			}
			env := decodeEnvelope(t, body)
			if env.Error == nil || env.Error.Code != tc.wantCode {
				t.Errorf("error = %+v, want code %q", env.Error, tc.wantCode)
			}
			if env.Meta.ApiVersion != APIVersion {
				t.Errorf("meta.apiVersion = %q on error, want %q", env.Meta.ApiVersion, APIVersion)
			}
		})
	}
}

// TestV1ApiVersionStamped: every v1 envelope — success and error, on
// every endpoint family — carries meta.apiVersion = "1".
func TestV1ApiVersionStamped(t *testing.T) {
	ts := testServer(t, true)
	bodies := []string{}
	for _, req := range []struct{ method, path, body string }{
		{"POST", "/v1/complete", `{"expr":"ta~name"}`},
		{"POST", "/v1/completeBatch", `{"queries":[{"expr":"ta~name"}]}`},
		{"POST", "/v1/evaluate", `{"expr":"ta~name","approve":[0]}`},
		{"POST", "/v1/explain", `{"expr":"ta~name"}`},
		{"GET", "/v1/schemas", ""},
		{"GET", "/v1/schemas/university", ""},
		{"GET", "/v1/traces", ""},
		{"GET", "/v1/queries/slow", ""},
		{"POST", "/v1/complete?schema=nope", `{"expr":"ta~name"}`}, // error envelope
		{"GET", "/v1/traces/deadbeef", ""},                         // error envelope
	} {
		if req.method == "POST" {
			_, body := post(t, ts.URL+req.path, req.body)
			bodies = append(bodies, req.path+": "+body)
		} else {
			resp, err := http.Get(ts.URL + req.path)
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, req.path+": "+readAll(t, resp))
		}
	}
	for _, tagged := range bodies {
		path, body, _ := strings.Cut(tagged, ": ")
		env := decodeEnvelope(t, body)
		if env.Meta.ApiVersion != APIVersion {
			t.Errorf("%s: meta.apiVersion = %q, want %q", path, env.Meta.ApiVersion, APIVersion)
		}
	}
}

// TestLegacyRouteModes drives the three -legacy-routes modes: "on"
// keeps serving with only the deprecation headers, "warn" (default)
// adds the RFC 8594 Sunset date, "off" answers 410 Gone with the
// legacy error shape naming the successor.
func TestLegacyRouteModes(t *testing.T) {
	t.Run("on", func(t *testing.T) {
		sv := New(uni.New(), nil, core.Exact())
		if err := sv.SetLegacyRoutes(LegacyOn); err != nil {
			t.Fatal(err)
		}
		ts := newTS(t, sv)
		resp, body := post(t, ts+"/complete", `{"expr":"ta~name"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Deprecation") != "true" || resp.Header.Get("Link") == "" {
			t.Errorf("deprecation headers missing in mode on: %v", resp.Header)
		}
		if got := resp.Header.Get("Sunset"); got != "" {
			t.Errorf("Sunset = %q in mode on, want absent", got)
		}
	})

	t.Run("warn is the default and stamps Sunset", func(t *testing.T) {
		sv := New(uni.New(), nil, core.Exact())
		ts := newTS(t, sv)
		resp, body := post(t, ts+"/complete", `{"expr":"ta~name"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("Sunset"); got != LegacySunset {
			t.Errorf("Sunset = %q, want %q", got, LegacySunset)
		}
	})

	t.Run("off", func(t *testing.T) {
		sv := New(uni.New(), nil, core.Exact())
		if err := sv.SetLegacyRoutes(LegacyOff); err != nil {
			t.Fatal(err)
		}
		ts := newTS(t, sv)
		resp, body := post(t, ts+"/complete", `{"expr":"ta~name"}`)
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("status = %d, want 410: %s", resp.StatusCode, body)
		}
		var legacy map[string]any
		if err := json.Unmarshal([]byte(body), &legacy); err != nil {
			t.Fatalf("410 body is not JSON: %v\n%s", err, body)
		}
		msg, _ := legacy["error"].(string)
		if !strings.Contains(msg, "/v1/complete") {
			t.Errorf("410 error %q does not name the successor", msg)
		}
		if resp.Header.Get("Sunset") != LegacySunset {
			t.Errorf("Sunset = %q in mode off", resp.Header.Get("Sunset"))
		}
		if got := sv.met.deprecated.With("/complete").Value(); got != 1 {
			t.Errorf("deprecation count = %d, want 1 (off still counts)", got)
		}

		// The versioned surface is untouched by off.
		vresp, vbody := post(t, ts+"/v1/complete", `{"expr":"ta~name"}`)
		if vresp.StatusCode != http.StatusOK {
			t.Errorf("/v1/complete status = %d in mode off: %s", vresp.StatusCode, vbody)
		}
	})

	t.Run("invalid mode rejected", func(t *testing.T) {
		sv := New(uni.New(), nil, core.Exact())
		if err := sv.SetLegacyRoutes("maybe"); err == nil {
			t.Error("SetLegacyRoutes(maybe) accepted")
		}
	})
}

// TestSessionsUnknownSchema: an upgrade handshake naming an unknown
// schema is refused with the same 404 unknown_schema envelope as every
// other endpoint — before the upgrade consumes the connection, so the
// client gets plain JSON it can decode.
func TestSessionsUnknownSchema(t *testing.T) {
	ts := testServer(t, false)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions?schema=nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Sec-WebSocket-Key", "dGhlIHNhbXBsZSBub25jZQ==")
	req.Header.Set("Sec-WebSocket-Version", "13")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error == nil || env.Error.Code != CodeUnknownSchema {
		t.Errorf("error = %+v, want code %q", env.Error, CodeUnknownSchema)
	}
}
