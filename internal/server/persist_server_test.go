package server

// The serving-layer half of durable persistence: the health split
// (/healthz liveness vs /readyz readiness, both ungated by admission),
// drain semantics (BeginDrain flips readiness and flushes pending
// saves while liveness keeps answering), the persistStatus block on
// /stats and /v1/schemas/{name}, and the scrape-synced persist metric
// families — including a restart that must report restored state.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathcomplete/internal/closure"
	"pathcomplete/internal/core"
	"pathcomplete/internal/persist"
	"pathcomplete/internal/registry"
	"pathcomplete/internal/uni"
)

// persistServer boots a closure-warming, persistence-enabled server
// over the given SDL files and data directory, returning the server
// and its listener. Reusing data across calls models a restart.
func persistServer(t *testing.T, files map[string]string, data string) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	msWriteDir(t, dir, files)
	ps, err := persist.Open(data)
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	reg := registry.New(core.Exact())
	reg.EnablePersist(ps)
	if err := reg.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	sv := NewFromRegistry(reg)
	if sv.AttachPersist() != ps {
		t.Fatal("AttachPersist did not return the registry's store")
	}
	// EnableClosure after AttachPersist, the pathserve boot order: the
	// retrofit warm pass runs the restore state machine with the
	// observer already listening.
	sv.EnableClosure(2, 1<<30)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return sv, ts
}

// waitSaved blocks until name's current generation is durably on disk.
func waitSaved(t *testing.T, sv *Server, name string) {
	t.Helper()
	ps := sv.reg.PersistStore()
	if st := waitClosure(t, sv, name); st.State != closure.StateReady {
		t.Fatalf("closure = %+v, want ready", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sn, err := sv.reg.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, st := sn.Generation(), sn.ClosureStatus()
		sn.Release()
		if g, ok := ps.SavedGeneration(name); st.Restored || (ok && g >= gen) {
			ps.Flush()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s to persist", name)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getReadyz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, body := getBody(t, url+"/readyz")
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("readyz body is not JSON: %v\n%s", err, body)
	}
	return resp.StatusCode, m
}

// TestReadyzLifecycle walks the readiness state machine: not ready
// before a default schema exists, ready once it does, not ready again
// after BeginDrain — with /healthz answering 200 (liveness) at every
// stage.
func TestReadyzLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New(core.Exact())
	sv := NewFromRegistry(reg)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)

	assertAlive := func(stage string) {
		t.Helper()
		resp, body := getBody(t, ts.URL+"/healthz")
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
			t.Fatalf("%s: healthz = %d %s, want alive throughout", stage, resp.StatusCode, body)
		}
	}

	// No schemas installed yet: alive but not ready.
	status, m := getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || m["status"] != "starting" {
		t.Fatalf("empty registry: readyz = %d %v, want 503 starting", status, m)
	}
	assertAlive("starting")

	msWriteDir(t, dir, map[string]string{"alpha": msSchemaV1})
	if err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	status, m = getReadyz(t, ts.URL)
	if status != http.StatusOK || m["status"] != "ready" || m["schema"] != "alpha" {
		t.Fatalf("after install: readyz = %d %v, want 200 ready", status, m)
	}
	assertAlive("ready")

	if sv.Draining() {
		t.Fatal("draining before BeginDrain")
	}
	sv.BeginDrain()
	sv.BeginDrain() // idempotent
	if !sv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	status, m = getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining: readyz = %d %v, want 503 draining", status, m)
	}
	assertAlive("draining")
}

// TestHealthUngatedUnderSaturation pins the split's point: with the
// admission gate saturated (search traffic shedding 429), both health
// endpoints still answer instantly — an overloaded process is alive
// and ready, and must not get restarted or unrouted for being busy.
func TestHealthUngatedUnderSaturation(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	sv.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: -1})
	if sv.gate.acquire(context.Background()) != admitOK {
		t.Fatal("could not occupy the only admission slot")
	}
	defer sv.gate.release()

	if resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gate not saturated: complete = %d %s", resp.StatusCode, body)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation = %d, want 200", resp.StatusCode)
	}
	if status, m := getReadyz(t, ts.URL); status != http.StatusOK {
		t.Errorf("readyz under saturation = %d %v, want 200", status, m)
	}
}

// TestPersistStatusSurfaces exercises the introspection plumbing over
// a real save/restore cycle: a first boot that warms and persists,
// then a restart over the same data directory that must come up
// restored — each stage checked on /v1/schemas/{name}, /stats, and
// the /metrics families.
func TestPersistStatusSurfaces(t *testing.T) {
	data := t.TempDir()
	files := map[string]string{"alpha": msSchemaV1}

	detail := func(ts *httptest.Server) SchemaDetailJSON {
		t.Helper()
		resp, body := getBody(t, ts.URL+"/v1/schemas/alpha")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schema detail = %d %s", resp.StatusCode, body)
		}
		var out SchemaDetailJSON
		if err := json.Unmarshal(decodeEnvelope(t, body).Data, &out); err != nil {
			t.Fatalf("decode detail: %v", err)
		}
		return out
	}

	// First boot: compiled fresh, then persisted.
	sv1, ts1 := persistServer(t, files, data)
	waitSaved(t, sv1, "alpha")
	d := detail(ts1)
	if d.PersistStatus == nil || !d.PersistStatus.Enabled || !d.PersistStatus.Saved {
		t.Fatalf("first boot persistStatus = %+v, want enabled+saved", d.PersistStatus)
	}
	if d.PersistStatus.Restored {
		t.Fatalf("first boot persistStatus = %+v: nothing existed to restore", d.PersistStatus)
	}
	if d.PersistStatus.SavedGeneration != d.Generation {
		t.Fatalf("savedGeneration %d != generation %d", d.PersistStatus.SavedGeneration, d.Generation)
	}

	// /stats carries the store counters and the per-schema status.
	_, statsBody := getBody(t, ts1.URL+"/stats")
	var stats struct {
		Persist       *persist.Stats     `json:"persist"`
		PersistStatus *PersistStatusJSON `json:"persistStatus"`
	}
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Persist == nil || stats.Persist.Saves == 0 || stats.PersistStatus == nil || !stats.PersistStatus.Enabled {
		t.Fatalf("stats persist block = %+v / %+v", stats.Persist, stats.PersistStatus)
	}

	// The scrape-synced counter families agree with the store.
	_, metricsBody := getBody(t, ts1.URL+"/metrics")
	if !strings.Contains(metricsBody, "pathcomplete_persist_saves_total 1") {
		t.Errorf("metrics missing persist saves:\n%s", grepLines(metricsBody, "persist_saves"))
	}

	// Restart over the same data: restored from disk, zero recompiles.
	sv2, ts2 := persistServer(t, files, data)
	waitSaved(t, sv2, "alpha")
	d2 := detail(ts2)
	if d2.PersistStatus == nil || !d2.PersistStatus.Enabled || !d2.PersistStatus.Restored || !d2.PersistStatus.Saved {
		t.Fatalf("restart persistStatus = %+v, want enabled+saved+restored", d2.PersistStatus)
	}
	if st := sv2.reg.PersistStore().Stats(); st.Restores != 1 || st.Recompiles != 0 {
		t.Fatalf("restart store stats = %+v, want 1 restore, 0 recompiles", st)
	}
	_, metricsBody2 := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(metricsBody2, "pathcomplete_persist_restores_total 1") {
		t.Errorf("restart metrics missing restore:\n%s", grepLines(metricsBody2, "persist_restores"))
	}
}

// TestPersistStatusDisabled: without a store the block is present but
// reports enabled=false, so clients can distinguish "no persistence
// configured" from "nothing saved yet".
func TestPersistStatusDisabled(t *testing.T) {
	_, ts, _ := multiServer(t, map[string]string{"alpha": msSchemaV1})
	resp, body := getBody(t, ts.URL+"/v1/schemas/alpha")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema detail = %d", resp.StatusCode)
	}
	var out SchemaDetailJSON
	if err := json.Unmarshal(decodeEnvelope(t, body).Data, &out); err != nil {
		t.Fatal(err)
	}
	if out.PersistStatus == nil || out.PersistStatus.Enabled || out.PersistStatus.Saved {
		t.Fatalf("persistStatus without a store = %+v", out.PersistStatus)
	}
}

// grepLines returns the lines of text containing substr, for failure
// messages that would otherwise dump a whole /metrics exposition.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
