package server

// Chaos test: the full handler stack is hammered by concurrent clients
// while the fault-injection switchboard randomly delays, errors, and
// panics at the server and store injection points. The assertions are
// the robustness contract, not the answers: every response the clients
// observe is well-formed JSON with an expected status, no panic escapes
// the process, no admission slot leaks, the HTTP request counter agrees
// exactly with what the clients saw, and scraped metrics are monotone
// throughout. Run it under -race (make race / CI) for the full effect.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/faultinject"
	"pathcomplete/internal/uni"
)

// chaosStatusOK lists every status the hardened path may legitimately
// answer under fault injection.
var chaosStatusOK = map[int]bool{
	http.StatusOK:                  true,
	http.StatusBadRequest:          true, // invalid requests in the mix
	http.StatusUnprocessableEntity: true, // unresolvable expressions
	http.StatusTooManyRequests:     true, // admission shed
	http.StatusServiceUnavailable:  true, // queue wait ended
	http.StatusInternalServerError: true, // injected errors and panics
}

// sumRequestsTotal adds up http_requests_total across all label sets
// whose path is one of the POST endpoints.
func sumRequestsTotal(text string) int {
	total := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `http_requests_total{`) {
			continue
		}
		if !strings.Contains(line, `path="/complete"`) && !strings.Contains(line, `path="/evaluate"`) {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err == nil {
			total += v
		}
	}
	return total
}

func TestChaosHandlerUnderFaultInjection(t *testing.T) {
	if err := faultinject.ArmSpec("delay=0.3,maxdelay=2ms,error=0.15,panic=0.05,seed=7"); err != nil {
		t.Fatalf("ArmSpec: %v", err)
	}
	defer faultinject.Disarm()

	st := uni.SampleStore()
	sv := New(st.Schema(), st, core.Exact())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const (
		clients  = 8
		perEach  = 40
		deadline = 2 * time.Minute
	)
	// The request mix: valid completions (some cacheable, some traced,
	// some tightly bounded), evaluations, and malformed requests.
	type reqSpec struct{ path, body string }
	mix := []reqSpec{
		{"/complete", `{"expr":"ta~name"}`},
		{"/complete", `{"expr":"ta~credits"}`},
		{"/complete", `{"expr":"student~name","trace":true}`},
		{"/complete", `{"expr":"department~name","timeoutMs":5}`},
		{"/complete", `{"expr":"ta..name"}`},        // unparsable: 400
		{"/complete", `{"expr":`},                   // malformed JSON: 400
		{"/evaluate", `{"expr":"student~credits"}`}, // store-backed: hits store.eval
		{"/evaluate", `{"expr":"department~name"}`}, // store-backed
		{"/complete", `{"expr":"university~name"}`}, // cacheable
		{"/complete", `{"expr":"professor~name","e":3}`},
	}

	var (
		observed   atomic.Uint64 // responses the clients actually received
		statusBad  atomic.Uint64
		bodyBroken atomic.Uint64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perEach; i++ {
				spec := mix[(c+i)%len(mix)]
				resp, err := client.Post(ts.URL+spec.path, "application/json", strings.NewReader(spec.body))
				if err != nil {
					// A transport-level failure would mean a panic escaped
					// into the connection — exactly what must not happen.
					t.Errorf("client %d: transport error: %v", c, err)
					return
				}
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				observed.Add(1)
				if rerr != nil {
					bodyBroken.Add(1)
					t.Errorf("client %d: body read: %v", c, rerr)
					continue
				}
				if !chaosStatusOK[resp.StatusCode] {
					statusBad.Add(1)
					t.Errorf("client %d: unexpected status %d: %s", c, resp.StatusCode, buf.String())
					continue
				}
				var m map[string]any
				if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
					bodyBroken.Add(1)
					t.Errorf("client %d: corrupted %d response: %v\n%s", c, resp.StatusCode, err, buf.String())
				}
			}
		}(c)
	}

	// While the clients hammer, scrape /metrics concurrently and check
	// the counters only ever move forward.
	hammering := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		last := -1.0
		for {
			select {
			case <-hammering:
				return
			case <-time.After(20 * time.Millisecond):
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("scrape status = %d", resp.StatusCode)
			}
			v := metricValue(buf.String(), "pathcomplete_searches_total")
			if v < last {
				t.Errorf("pathcomplete_searches_total went backwards: %g after %g", v, last)
			}
			last = v
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("chaos run deadlocked: %d/%d responses after %v",
			observed.Load(), clients*perEach, deadline)
	}
	close(hammering)
	<-scrapeDone
	faultinject.Disarm()

	if got := observed.Load(); got != clients*perEach {
		t.Errorf("clients observed %d responses, want %d", got, clients*perEach)
	}

	// The faults really fired.
	snap := faultinject.Snapshot()
	if snap.Visited == 0 || snap.Delays+snap.Errors+snap.Panics == 0 {
		t.Errorf("fault injection never fired: %+v", snap)
	}
	// Every injected panic was absorbed by the recovery middleware.
	if got := sv.met.panicsRecovered.Value(); got != snap.Panics {
		t.Errorf("panicsRecovered = %d, injected panics = %d", got, snap.Panics)
	}

	// No admission slot leaked and the gauge settled.
	if n := sv.gate.inFlight(); n != 0 {
		t.Errorf("admission slots leaked: %d still held", n)
	}
	if n := sv.gate.queued(); n != 0 {
		t.Errorf("admission queue not drained: %d waiters", n)
	}
	if v := sv.met.inflight.Value(); v != 0 {
		t.Errorf("inflight gauge = %d after the run", v)
	}

	// The server's request accounting agrees exactly with what the
	// clients saw (read off the registry directly: no extra scrape).
	var buf bytes.Buffer
	if err := sv.metReg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if got := sumRequestsTotal(buf.String()); got != clients*perEach {
		t.Errorf("http_requests_total over POST endpoints = %d, clients observed %d", got, clients*perEach)
	}

	// The process is still healthy: a clean request succeeds.
	resp, body := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-chaos request: status = %d (body %s)", resp.StatusCode, body)
	}
}
