package server

// Envelope goldens for the /v1 surface: the success shape per
// endpoint, every error code the closed set defines, the deprecation
// contract on the legacy routes, and the closure serving path
// end-to-end (engine=closure on the warm hot path, engine=search on
// every fall-through shape, answers identical either way).

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pathcomplete/internal/closure"
	"pathcomplete/internal/core"
	"pathcomplete/internal/uni"
)

// testEnvelope decodes a v1 wire body with the data payload kept raw.
type testEnvelope struct {
	Data  json.RawMessage `json:"data"`
	Error *APIError       `json:"error"`
	Meta  *Meta           `json:"meta"`
}

func decodeEnvelope(t *testing.T, body string) testEnvelope {
	t.Helper()
	var env testEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("v1 body is not an envelope: %v\n%s", err, body)
	}
	if env.Meta == nil {
		t.Fatalf("envelope missing meta: %s", body)
	}
	if env.Meta.DurationMs < 0 {
		t.Errorf("meta.durationMs = %v", env.Meta.DurationMs)
	}
	return env
}

// isNullData reports whether the envelope's data member is JSON null.
func isNullData(d json.RawMessage) bool {
	return len(d) == 0 || string(d) == "null"
}

// waitClosure blocks until the named schema's closure handle settles
// and returns its final status.
func waitClosure(t *testing.T, sv *Server, name string) closure.Status {
	t.Helper()
	sn, err := sv.reg.Acquire(name)
	if err != nil {
		t.Fatalf("Acquire(%q): %v", name, err)
	}
	h := sn.Closure()
	sn.Release()
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("closure build for %q did not settle", name)
	}
	return h.Status()
}

// TestV1CompleteEnvelope pins the success envelope of POST
// /v1/complete: data carries the same CompleteResponse the legacy
// route returns, error is null, and meta names the snapshot and the
// answering engine.
func TestV1CompleteEnvelope(t *testing.T) {
	ts := testServer(t, false)
	resp, body := post(t, ts.URL+"/v1/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error != nil {
		t.Fatalf("error = %+v on success", env.Error)
	}
	var out CompleteResponse
	if err := json.Unmarshal(env.Data, &out); err != nil {
		t.Fatalf("decode data: %v", err)
	}
	want := []CompletionJSON{
		{Path: "ta@>grad@>student@>person.name", Conn: ".", SemLen: 1},
		{Path: "ta@>instructor@>teacher@>employee@>person.name", Conn: ".", SemLen: 1},
	}
	if !reflect.DeepEqual(out.Completions, want) {
		t.Errorf("completions = %+v", out.Completions)
	}
	if env.Meta.Schema != "university" || env.Meta.Generation == 0 {
		t.Errorf("meta = %+v", env.Meta)
	}
	if env.Meta.Engine != engineSearch {
		t.Errorf("meta.engine = %q, want %q (closure not enabled)", env.Meta.Engine, engineSearch)
	}

	// The legacy route returns the identical payload, bare.
	_, legacy := post(t, ts.URL+"/complete", `{"expr":"ta~name"}`)
	var lout CompleteResponse
	if err := json.Unmarshal([]byte(legacy), &lout); err != nil {
		t.Fatalf("decode legacy: %v", err)
	}
	if !reflect.DeepEqual(lout.Completions, out.Completions) {
		t.Errorf("legacy and v1 payloads diverge:\n v1: %+v\n legacy: %+v", out.Completions, lout.Completions)
	}
}

// TestV1SuccessEnvelopes sweeps the remaining endpoints' success
// shapes: batch, evaluate, the schema listing, and the per-schema
// detail with its SDL and closure status.
func TestV1SuccessEnvelopes(t *testing.T) {
	ts := testServer(t, true) // with store, so /v1/evaluate works

	t.Run("completeBatch", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/completeBatch", `{"queries":[{"expr":"ta~name"},{"expr":"student~office"}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		env := decodeEnvelope(t, body)
		var out BatchResponse
		if err := json.Unmarshal(env.Data, &out); err != nil {
			t.Fatalf("decode data: %v", err)
		}
		if len(out.Results) != 2 {
			t.Errorf("results = %d", len(out.Results))
		}
		if env.Meta.Schema != "university" || env.Meta.Generation == 0 {
			t.Errorf("meta = %+v", env.Meta)
		}
	})

	t.Run("evaluate", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/evaluate", `{"expr":"ta~name","approve":[0]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		env := decodeEnvelope(t, body)
		var out EvaluateResponse
		if err := json.Unmarshal(env.Data, &out); err != nil {
			t.Fatalf("decode data: %v", err)
		}
		if len(out.Chosen) != 1 || !reflect.DeepEqual(out.Values, []any{"Yezdi"}) {
			t.Errorf("evaluate = %+v", out)
		}
	})

	t.Run("schemas", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/schemas")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env testEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode: %v", err)
		}
		var out SchemasResponse
		if err := json.Unmarshal(env.Data, &out); err != nil {
			t.Fatalf("decode data: %v", err)
		}
		if len(out.Schemas) != 1 || out.Schemas[0].Name != "university" || !out.Schemas[0].Default {
			t.Errorf("schemas = %+v", out.Schemas)
		}
		if out.Schemas[0].Closure != string(closure.StateDisabled) {
			t.Errorf("closure state = %q, want disabled", out.Schemas[0].Closure)
		}
	})

	t.Run("schemaByName", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/schemas/university")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env testEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode: %v", err)
		}
		var out SchemaDetailJSON
		if err := json.Unmarshal(env.Data, &out); err != nil {
			t.Fatalf("decode data: %v", err)
		}
		if out.Name != "university" || !strings.Contains(out.SDL, "isa student person") {
			t.Errorf("detail = %+v", out)
		}
		if out.ClosureStatus.State != closure.StateDisabled {
			t.Errorf("closureStatus = %+v", out.ClosureStatus)
		}
		if env.Meta.Schema != "university" {
			t.Errorf("meta = %+v", env.Meta)
		}
	})
}

// TestV1ErrorEnvelopes drives every reachable error code and requires
// the uniform envelope: data null, error {code, message}, meta with
// durationMs.
func TestV1ErrorEnvelopes(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())

	check := func(t *testing.T, body string, status, wantStatus int, wantCode string) {
		t.Helper()
		if status != wantStatus {
			t.Fatalf("status = %d, want %d: %s", status, wantStatus, body)
		}
		env := decodeEnvelope(t, body)
		if !isNullData(env.Data) {
			t.Errorf("data = %s on error", env.Data)
		}
		if env.Error == nil || env.Error.Code != wantCode {
			t.Errorf("error = %+v, want code %q", env.Error, wantCode)
		}
		if env.Error != nil && env.Error.Message == "" {
			t.Error("error.message empty")
		}
	}

	t.Run("bad_request/malformed body", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/complete", `{"expr":`)
		check(t, body, resp.StatusCode, http.StatusBadRequest, CodeBadRequest)
	})
	t.Run("bad_request/unparsable expr", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/complete", `{"expr":"~~~"}`)
		check(t, body, resp.StatusCode, http.StatusBadRequest, CodeBadRequest)
	})
	t.Run("bad_request/unresolvable root 422", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/complete", `{"expr":"nosuchclass~name"}`)
		check(t, body, resp.StatusCode, http.StatusUnprocessableEntity, CodeBadRequest)
	})
	t.Run("unknown_schema", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/complete?schema=nope", `{"expr":"ta~name"}`)
		check(t, body, resp.StatusCode, http.StatusNotFound, CodeUnknownSchema)
	})
	t.Run("unknown_schema/detail", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/schemas/nope")
		if err != nil {
			t.Fatal(err)
		}
		check(t, readAll(t, resp), resp.StatusCode, http.StatusNotFound, CodeUnknownSchema)
	})
	t.Run("bad_request/reload without dir 409", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/schemas/reload", `{}`)
		check(t, body, resp.StatusCode, http.StatusConflict, CodeBadRequest)
	})
	t.Run("overloaded", func(t *testing.T) {
		sv.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: -1})
		if sv.gate.acquire(context.Background()) != admitOK {
			t.Fatal("could not occupy the only admission slot")
		}
		defer sv.gate.release()
		resp, body := post(t, ts.URL+"/v1/complete", `{"expr":"ta~name"}`)
		check(t, body, resp.StatusCode, http.StatusTooManyRequests, CodeOverloaded)
		if resp.Header.Get("Retry-After") != "1" {
			t.Errorf("Retry-After = %q", resp.Header.Get("Retry-After"))
		}
	})
}

// readAll drains a response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestLegacyDeprecation: every legacy route answers with the
// Deprecation header and its v1 successor Link, counts into the
// deprecation metric, and keeps returning its legacy payload; the v1
// routes carry neither header.
func TestLegacyDeprecation(t *testing.T) {
	sv, ts := newTestSrv(t, uni.New())
	for route, succ := range deprecatedSuccessor {
		var resp *http.Response
		switch route {
		case "/complete", "/completeBatch", "/evaluate", "/schemas/reload":
			resp, _ = post(t, ts.URL+route, `{"expr":"ta~name"}`)
		default:
			r, err := http.Get(ts.URL + route)
			if err != nil {
				t.Fatalf("GET %s: %v", route, err)
			}
			r.Body.Close()
			resp = r
		}
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("%s: Deprecation = %q, want \"true\"", route, got)
		}
		wantLink := "<" + succ + `>; rel="successor-version"`
		if got := resp.Header.Get("Link"); got != wantLink {
			t.Errorf("%s: Link = %q, want %q", route, got, wantLink)
		}
		// The default mode is warn: the retirement date is announced.
		if got := resp.Header.Get("Sunset"); got != LegacySunset {
			t.Errorf("%s: Sunset = %q, want %q", route, got, LegacySunset)
		}
		if got := sv.met.deprecated.With(route).Value(); got != 1 {
			t.Errorf("%s: deprecation count = %d, want 1", route, got)
		}
	}

	// The versioned surface is not deprecated.
	resp, _ := post(t, ts.URL+"/v1/complete", `{"expr":"ta~name"}`)
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Link") != "" {
		t.Errorf("/v1/complete carries deprecation headers: %q %q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Link"))
	}
}

// TestV1ClosureServing: with warming enabled, the single-gap hot path
// answers from the index (meta.engine = "closure", hit metric), every
// fall-through shape reports engine = "search", and the two engines'
// answers are identical.
func TestV1ClosureServing(t *testing.T) {
	sv := New(uni.New(), nil, core.Exact())
	sv.EnableClosure(1, 1<<30)
	ts := newTS(t, sv)
	if st := waitClosure(t, sv, ""); st.State != closure.StateReady {
		t.Fatalf("closure = %+v, want ready", st)
	}

	// Closure hit.
	resp, body := post(t, ts+"/v1/complete", `{"expr":"ta~name"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Meta.Engine != engineClosure {
		t.Fatalf("meta.engine = %q, want %q", env.Meta.Engine, engineClosure)
	}
	var closureOut CompleteResponse
	if err := json.Unmarshal(env.Data, &closureOut); err != nil {
		t.Fatal(err)
	}
	if got := sv.met.closureHits.Value(); got != 1 {
		t.Errorf("closureHits = %d, want 1", got)
	}

	// Fall-through shapes all answer engine=search with the same
	// completions.
	for name, reqBody := range map[string]string{
		"traced":      `{"expr":"ta~name","trace":true}`,
		"budgeted":    `{"expr":"ta~name","timeoutMs":5000}`,
		"e-overrid":   `{"expr":"ta~name","e":2}`,
		"multi-gap":   `{"expr":"ta~name.self"}`,            // not single-gap shaped
		"constrained": `{"expr":"ta~(.*)~name"}`,            // annotated gap, even degenerate
		"predicated":  `{"expr":"ta~name[self != \"zz\"]"}`, // pushed-down predicate
	} {
		resp, body := post(t, ts+"/v1/complete", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", name, resp.StatusCode, body)
		}
		env := decodeEnvelope(t, body)
		if env.Meta.Engine != engineSearch {
			t.Errorf("%s: meta.engine = %q, want %q", name, env.Meta.Engine, engineSearch)
		}
		if name == "traced" || name == "budgeted" {
			var out CompleteResponse
			if err := json.Unmarshal(env.Data, &out); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out.Completions, closureOut.Completions) {
				t.Errorf("%s: search answer diverges from closure answer:\n search: %+v\n closure: %+v",
					name, out.Completions, closureOut.Completions)
			}
		}
	}
	if sv.met.closureFallbacks.Value() == 0 {
		t.Error("fallback metric never moved")
	}

	// The data payload also names the engine.
	if closureOut.Engine != engineClosure {
		t.Errorf("data.engine = %q, want %q", closureOut.Engine, engineClosure)
	}

	// /stats exposes the budget and the per-schema closure status.
	r2, err := http.Get(ts + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(readAll(t, r2)), &stats); err != nil {
		t.Fatal(err)
	}
	cl, ok := stats["closure"].(map[string]any)
	if !ok || cl["state"] != "ready" {
		t.Errorf("stats.closure = %v", stats["closure"])
	}
	if _, ok := stats["closureBudget"].(map[string]any); !ok {
		t.Errorf("stats.closureBudget = %v", stats["closureBudget"])
	}
}

// newTS wraps a server in a test listener.
func newTS(t *testing.T, sv *Server) string {
	t.Helper()
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
