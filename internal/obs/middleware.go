package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTPMetrics bundles the standard server-side HTTP metrics:
//
//	http_requests_total{path,method,code}   per-endpoint request counter
//	http_request_duration_seconds{path}     per-endpoint latency histogram
//	http_in_flight_requests                 requests currently being served
//
// Construct one per Registry with NewHTTPMetrics and wrap the root
// handler with Wrap. With SetTracing, Wrap additionally opens one root
// span per selected request (W3C traceparent ingest/emit) and
// annotates the latency histogram with trace-ID exemplars.
type HTTPMetrics struct {
	requests *CounterVec
	duration *HistogramVec
	inFlight *Gauge
	routeLG  *LabelGuard
	tracing  *TracePipeline
}

// NewHTTPMetrics registers the HTTP metric families on r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec("http_requests_total",
			"HTTP requests served, by route, method, and status code.",
			"path", "method", "code"),
		duration: r.HistogramVec("http_request_duration_seconds",
			"HTTP request latency in seconds, by route.",
			DefBuckets(), "path"),
		inFlight: r.Gauge("http_in_flight_requests",
			"HTTP requests currently being served."),
		routeLG: NewLabelGuard(DefaultLabelCap),
	}
}

// SetTracing attaches the span pipeline Wrap threads through every
// request. Call before serving traffic; nil detaches.
func (m *HTTPMetrics) SetTracing(tp *TracePipeline) { m.tracing = tp }

// RequestIDHeader is the header carrying the request ID. An inbound
// value is trusted (so IDs propagate across hops); otherwise a fresh
// random ID is generated. The response always echoes the header.
const RequestIDHeader = "X-Request-Id"

// statusWriter captures the status code and body size written by the
// wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Hijack lets protocol-upgrade handlers (WebSocket sessions) take the
// connection through the instrumented writer. The request is recorded
// as a 101; bytes written on the hijacked connection are not counted.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("obs: underlying ResponseWriter does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err == nil && w.status == 0 {
		w.status = http.StatusSwitchingProtocols
	}
	return conn, rw, err
}

// Wrap instruments next with the HTTP metrics and, when logger is
// non-nil, structured request logging with request IDs.
//
// routes lists the known route patterns; a request is attributed to
// the most specific pattern that matches it (see NormalizeRoute), and
// to "other" when none does. Normalizing the path label through a
// fixed allowlist — with {name}-style wildcard segments collapsing to
// their template, belt-and-suspendered by a LabelGuard — keeps metric
// cardinality bounded no matter what paths a hostile client probes.
//
// When a span pipeline is attached (SetTracing), Wrap parses the
// inbound W3C traceparent, opens the request's root span named
// "METHOD route-template" (the inbound sampled flag is honored
// subject to the pipeline's TraceConfig.InboundLimit — it is
// client-controlled), echoes the resulting traceparent on the
// response (every surface, legacy routes included), stamps the
// terminal status on the span, and — when the trace is retained —
// records a trace-ID exemplar on the route's latency histogram. All
// of it is skipped at the cost of one nil test when tracing is off.
func (m *HTTPMetrics) Wrap(logger *slog.Logger, routes []string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Inc()
		defer m.inFlight.Dec()

		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)

		route := m.routeLG.Bound(NormalizeRoute(routes, r.URL.Path))

		var span *Span
		if m.tracing != nil {
			inbound, _ := ParseTraceparent(r.Header.Get(TraceparentHeader))
			ctx, s := m.tracing.StartRoot(r.Context(), r.Method+" "+route, inbound)
			if s != nil {
				span = s
				r = r.WithContext(ctx)
				w.Header().Set(TraceparentHeader, s.Context().Traceparent())
			}
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		elapsed := time.Since(start)
		traceID := ""
		if span != nil {
			span.SetStatus(sw.status)
			span.End()
			if span.Kept() {
				traceID = span.TraceID()
			}
		}
		m.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
		m.duration.With(route).ObserveExemplar(elapsed.Seconds(), traceID)

		if logger != nil {
			attrs := []slog.Attr{
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			}
			if span != nil {
				attrs = append(attrs, slog.String("trace", span.TraceID()))
			}
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

// NormalizeRoute maps a concrete request path onto the route
// allowlist. An entry matches when it equals the path, when it ends
// in "/" and prefixes the path, or segment-by-segment when it carries
// {name}-style template segments (each template segment matches any
// single non-empty path segment, so "/v1/schemas/{name}" absorbs
// every per-schema URL into one label). The longest matching entry
// wins; unmatched paths collapse to "other".
func NormalizeRoute(routes []string, path string) string {
	best := ""
	for _, rt := range routes {
		if rt == path {
			return rt // an exact entry always beats templates and prefixes
		}
		match := (strings.HasSuffix(rt, "/") && strings.HasPrefix(path, rt)) ||
			(strings.Contains(rt, "{") && templateMatch(rt, path))
		if match && len(rt) > len(best) {
			best = rt
		}
	}
	if best == "" {
		return "other"
	}
	return best
}

// templateMatch reports whether path matches the route template
// segment-by-segment, with "{...}" segments matching any single
// non-empty segment.
func templateMatch(tmpl, path string) bool {
	for {
		ts, trest, tmore := nextSegment(tmpl)
		ps, prest, pmore := nextSegment(path)
		if tmore != pmore {
			return false
		}
		if !tmore {
			return true
		}
		wild := len(ts) >= 2 && ts[0] == '{' && ts[len(ts)-1] == '}'
		if wild {
			if ps == "" {
				return false
			}
		} else if ts != ps {
			return false
		}
		tmpl, path = trest, prest
	}
}

// nextSegment splits off the leading "/"-delimited segment.
func nextSegment(s string) (seg, rest string, more bool) {
	if s == "" {
		return "", "", false
	}
	s = strings.TrimPrefix(s, "/")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i:], true
	}
	return s, "", true
}

// newRequestID returns 16 hex characters of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef" // rand failure: still serve the request
	}
	return hex.EncodeToString(b[:])
}
