package obs

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTPMetrics bundles the standard server-side HTTP metrics:
//
//	http_requests_total{path,method,code}   per-endpoint request counter
//	http_request_duration_seconds{path}     per-endpoint latency histogram
//	http_in_flight_requests                 requests currently being served
//
// Construct one per Registry with NewHTTPMetrics and wrap the root
// handler with Wrap.
type HTTPMetrics struct {
	requests *CounterVec
	duration *HistogramVec
	inFlight *Gauge
}

// NewHTTPMetrics registers the HTTP metric families on r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec("http_requests_total",
			"HTTP requests served, by route, method, and status code.",
			"path", "method", "code"),
		duration: r.HistogramVec("http_request_duration_seconds",
			"HTTP request latency in seconds, by route.",
			DefBuckets(), "path"),
		inFlight: r.Gauge("http_in_flight_requests",
			"HTTP requests currently being served."),
	}
}

// RequestIDHeader is the header carrying the request ID. An inbound
// value is trusted (so IDs propagate across hops); otherwise a fresh
// random ID is generated. The response always echoes the header.
const RequestIDHeader = "X-Request-Id"

// statusWriter captures the status code and body size written by the
// wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Wrap instruments next with the HTTP metrics and, when logger is
// non-nil, structured request logging with request IDs.
//
// routes lists the known route paths; a request is attributed to the
// longest route that matches it exactly or (for routes ending in "/")
// by prefix, and to "other" when none does. Normalizing the path label
// through a fixed allowlist keeps metric cardinality bounded no matter
// what paths a hostile client probes.
func (m *HTTPMetrics) Wrap(logger *slog.Logger, routes []string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Inc()
		defer m.inFlight.Dec()

		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		route := NormalizeRoute(routes, r.URL.Path)
		elapsed := time.Since(start)
		m.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
		m.duration.With(route).Observe(elapsed.Seconds())

		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// NormalizeRoute maps a concrete request path onto the route
// allowlist: the longest entry that equals the path, or whose value
// ends in "/" and prefixes the path, wins; unmatched paths collapse to
// "other".
func NormalizeRoute(routes []string, path string) string {
	best := ""
	for _, rt := range routes {
		if rt == path || (strings.HasSuffix(rt, "/") && strings.HasPrefix(path, rt)) {
			if len(rt) > len(best) {
				best = rt
			}
		}
	}
	if best == "" {
		return "other"
	}
	return best
}

// newRequestID returns 16 hex characters of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef" // rand failure: still serve the request
	}
	return hex.EncodeToString(b[:])
}
