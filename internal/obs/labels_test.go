package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelGuardAdmitsUpToCap(t *testing.T) {
	g := NewLabelGuard(3)
	for _, v := range []string{"a", "b", "c"} {
		if got := g.Bound(v); got != v {
			t.Errorf("Bound(%q) = %q, want pass-through", v, got)
		}
	}
	if got := g.Bound("d"); got != OverflowLabel {
		t.Errorf("Bound beyond cap = %q, want %q", got, OverflowLabel)
	}
	if n := g.Admitted(); n != 3 {
		t.Errorf("Admitted = %d, want 3", n)
	}
}

func TestLabelGuardMonotone(t *testing.T) {
	// A value admitted before the cap filled keeps passing through after
	// the cap is exhausted: series never flap into the overflow bucket.
	g := NewLabelGuard(2)
	g.Bound("a")
	g.Bound("b")
	g.Bound("c") // overflow
	for i := 0; i < 3; i++ {
		if got := g.Bound("a"); got != "a" {
			t.Fatalf("admitted value flapped: Bound(a) = %q", got)
		}
		if got := g.Bound("c"); got != OverflowLabel {
			t.Fatalf("rejected value flapped: Bound(c) = %q", got)
		}
	}
}

func TestLabelGuardEmptyValue(t *testing.T) {
	g := NewLabelGuard(10)
	if got := g.Bound(""); got != OverflowLabel {
		t.Errorf("Bound(\"\") = %q, want %q", got, OverflowLabel)
	}
	if n := g.Admitted(); n != 0 {
		t.Errorf("empty value consumed a cap slot: Admitted = %d", n)
	}
}

func TestLabelGuardDefaultCap(t *testing.T) {
	g := NewLabelGuard(0)
	for i := 0; i < DefaultLabelCap; i++ {
		v := fmt.Sprintf("s%03d", i)
		if got := g.Bound(v); got != v {
			t.Fatalf("Bound(%q) = %q under default cap", v, got)
		}
	}
	if got := g.Bound("one-too-many"); got != OverflowLabel {
		t.Errorf("default cap not enforced: got %q", got)
	}
}

func TestLabelGuardConcurrent(t *testing.T) {
	// Hammer one guard from many goroutines; the admitted set must end
	// exactly at the cap and every returned value must be either the
	// input or the overflow label. Run under -race this also checks the
	// locking.
	g := NewLabelGuard(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := fmt.Sprintf("v%d", i%16)
				if got := g.Bound(v); got != v && got != OverflowLabel {
					t.Errorf("Bound(%q) = %q", v, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Admitted(); n != 8 {
		t.Errorf("Admitted = %d, want exactly the cap (8)", n)
	}
}
