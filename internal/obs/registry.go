// Package obs is the observability layer of the repository: a
// stdlib-only metrics registry with Prometheus text exposition
// (counters, gauges, fixed-bucket histograms, and their labeled
// variants) plus HTTP server instrumentation (request logging with
// request IDs, per-endpoint counters and latency histograms, and an
// in-flight gauge).
//
// The paper evaluates Algorithm 2 through per-query effort counters
// (Figure 7); core.Stats captures them per search, and this package is
// what aggregates them across a serving process so a regression in the
// hot path is visible on a dashboard rather than anecdotal. The
// implementation is deliberately small — atomic counters, a sorted
// write path, no dependency on a metrics client library — matching the
// zero-dependency go.mod.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; negative deltas belong on a
// Gauge).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// SyncTo advances the counter to an externally tracked monotonic
// total — the scrape-time bridge for sources that expose a running
// total rather than increments (runtime.MemStats, pool counters).
// A value at or behind the current count is a no-op, so the counter
// never regresses even when scrapes race.
func (c *Counter) SyncTo(total uint64) {
	for {
		old := c.v.Load()
		if total <= old || c.v.CompareAndSwap(old, total) {
			return
		}
	}
}

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// increasing order; an implicit +Inf bucket catches the rest. All
// methods are safe for concurrent use.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; the last is +Inf
	count     atomic.Uint64
	sumBits   atomic.Uint64              // math.Float64bits of the running sum
	exemplars []atomic.Pointer[exemplar] // last exemplar per bucket; nil until first use
}

// exemplar is one OpenMetrics exemplar: a reference from a histogram
// bucket to the trace that produced a representative observation.
type exemplar struct {
	labels string // rendered label set, e.g. `trace_id="abc..."`
	value  float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bs)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar is Observe plus an exemplar: the observation's
// bucket remembers the trace that produced it, and the OpenMetrics
// exposition (WriteOpenMetrics; negotiated by Handler via the Accept
// header) annotates the bucket with `# {trace_id="..."}` syntax so a
// latency spike on a dashboard links straight to a retained trace.
// The classic 0.0.4 text format never carries the annotation — its
// parsers reject exemplar suffixes. An empty traceID degrades to a
// plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&exemplar{labels: `trace_id="` + escapeLabel(traceID) + `"`, value: v})
	}
	h.Observe(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets are general-purpose latency buckets in seconds, from
// 100µs (a warm in-memory completion) to 10s (a search that blew its
// interactive budget).
func DefBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// metricKind discriminates exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus the series living under
// it (one for a plain metric, one per label-value combination for a
// vec).
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label names; nil for a plain metric

	mu     sync.Mutex
	series map[string]any // rendered label string → *Counter | *Gauge | *Histogram
	order  []string       // sorted keys of series
	// vec constructor state
	bounds []float64 // histogram buckets
}

func (f *family) get(labelStr string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelStr]; ok {
		return s
	}
	s := mk()
	f.series[labelStr] = s
	f.order = append(f.order, labelStr)
	sort.Strings(f.order)
	return s
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Metric registration is idempotent:
// re-registering a name returns the existing metric, and panics only
// if the type or label set differs (a programming error).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	scrapers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every WriteText call,
// before any family is rendered — the hook point for gauges whose
// value is only worth computing when somebody is looking (Go runtime
// stats, pool counters). Hooks must not register metrics from inside
// themselves with a different type, and should be cheap: they run on
// the scrape path.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scrapers = append(r.scrapers, fn)
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic("obs: metric " + name + " re-registered with a different type or label set")
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("obs: metric " + name + " re-registered with different labels")
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]any),
		bounds: append([]float64(nil), bounds...),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) the plain counter with the given
// name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or returns) the plain gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or returns) the plain histogram with the given
// name and bucket upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.get("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label
// name, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	ls := renderLabels(v.f.labels, values)
	return v.f.get(ls, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	ls := renderLabels(v.f.labels, values)
	return v.f.get(ls, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	ls := renderLabels(v.f.labels, values)
	return v.f.get(ls, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// renderLabels renders a label set as `a="x",b="y"` with escaped
// values; it is the canonical series key and the exposition substring.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// string, so the output is deterministic given deterministic values.
// Exemplars are not rendered: the 0.0.4 grammar has no room for them
// (a parser expects an optional timestamp after the value, so an
// exemplar suffix fails the whole scrape) — they are an OpenMetrics
// feature, see WriteOpenMetrics.
func (r *Registry) WriteText(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics renders every family in the OpenMetrics text
// format: counter families advertise their name without the `_total`
// sample suffix, histogram buckets carry their `# {...}` exemplar
// annotations, and the output is terminated by the mandatory `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	scrapers := append([]func(){}, r.scrapers...)
	r.mu.Unlock()
	for _, fn := range scrapers {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw, openMetrics)
	}
	if openMetrics {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

func (f *family) write(bw *bufio.Writer, openMetrics bool) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	series := make([]any, len(order))
	for i, k := range order {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	// OpenMetrics names a counter family without the `_total` sample
	// suffix ("# TYPE jobs counter" owning the sample "jobs_total");
	// every counter this codebase registers carries the suffix.
	famName := f.name
	if openMetrics && f.kind == kindCounter {
		famName = strings.TrimSuffix(famName, "_total")
	}
	if f.help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", famName, strings.ReplaceAll(f.help, "\n", " "))
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", famName, f.kind)
	for i, s := range series {
		ls := order[i]
		switch m := s.(type) {
		case *Counter:
			writeSample(bw, f.name, ls, formatUint(m.Value()))
		case *Gauge:
			writeSample(bw, f.name, ls, strconv.FormatInt(m.Value(), 10))
		case *Histogram:
			var cum uint64
			for bi, bound := range m.bounds {
				cum += m.counts[bi].Load()
				writeExemplarSample(bw, f.name+"_bucket", joinLabels(ls, `le="`+formatFloat(bound)+`"`), formatUint(cum), m.exemplar(bi, openMetrics))
			}
			cum += m.counts[len(m.bounds)].Load()
			writeExemplarSample(bw, f.name+"_bucket", joinLabels(ls, `le="+Inf"`), formatUint(cum), m.exemplar(len(m.bounds), openMetrics))
			writeSample(bw, f.name+"_sum", ls, formatFloat(m.Sum()))
			writeSample(bw, f.name+"_count", ls, formatUint(m.Count()))
		}
	}
}

// exemplar returns the bucket's exemplar for rendering, or nil when
// the output format cannot carry one.
func (h *Histogram) exemplar(i int, openMetrics bool) *exemplar {
	if !openMetrics {
		return nil
	}
	return h.exemplars[i].Load()
}

// writeExemplarSample writes one bucket sample, annotated with its
// exemplar in OpenMetrics syntax when one is present:
//
//	name_bucket{le="0.005"} 12 # {trace_id="4bf9..."} 0.0042
//
// Callers pass a nil exemplar in the 0.0.4 text format: its parsers
// expect only an optional timestamp after the value, so the
// annotation is valid OpenMetrics alone.
func writeExemplarSample(bw *bufio.Writer, name, labels, value string, ex *exemplar) {
	if ex == nil {
		writeSample(bw, name, labels, value)
		return
	}
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteString(" # {")
	bw.WriteString(ex.labels)
	bw.WriteString("} ")
	bw.WriteString(formatFloat(ex.value))
	bw.WriteByte('\n')
}

func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// OpenMetricsContentType is the content type negotiated for the
// exemplar-carrying exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler returns an http.Handler serving the exposition at any path
// it is mounted on (conventionally GET /metrics). The format is
// negotiated on the Accept header: a scraper asking for
// `application/openmetrics-text` (Prometheus does when configured for
// it) gets the OpenMetrics rendering with exemplars and `# EOF`;
// everyone else gets the classic 0.0.4 text format, which cannot
// carry exemplars.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
