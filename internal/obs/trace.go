package obs

// Request-scoped tracing: the span pipeline behind /v1/traces and
// /v1/queries/slow. One root span is opened per instrumented request
// (or synthesized for a background build), child spans mark the
// pipeline stages the request passed through — admission, cache,
// closure lookup, kernel search, batch fan-out — and the finished
// trace is retained in a lock-free bounded ring subject to two rules:
//
//   - head sampling: the root is sampled at StartRoot time, either
//     because the inbound W3C traceparent carried the sampled flag
//     (subject to TraceConfig.InboundLimit — the flag is
//     client-controlled) or because the deterministic 1-in-N head
//     sampler fired;
//   - tail rules: an unsampled trace is still retained when it turns
//     out slow (duration >= SlowThreshold) or failed (HTTP 5xx or an
//     explicit span error) — the traces an operator actually wants are
//     exactly the ones head sampling would have missed.
//
// Traces whose root carries query attributes (AttrExpr et al.) and
// cross the slow threshold are additionally folded into a separate
// slow-query ring with per-stage timings, so "why was this query
// slow" is answerable without trawling the full trace buffer.
//
// The pipeline is nil-safe end to end: a nil *TracePipeline, a nil
// *Span, and a context without a span all no-op, so instrumented code
// pays one pointer test per stage when tracing is off.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceIDLen and SpanIDLen are the W3C trace-context identifier sizes
// in bytes (rendered as 32 and 16 lowercase hex characters).
const (
	TraceIDLen = 16
	SpanIDLen  = 8
)

// SpanContext identifies one span within one trace, plus the sampled
// flag — the unit the W3C traceparent header carries between hops.
type SpanContext struct {
	TraceID [TraceIDLen]byte
	SpanID  [SpanIDLen]byte
	Sampled bool
}

// Valid reports whether both identifiers are non-zero, as the W3C
// spec requires.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [TraceIDLen]byte{} && sc.SpanID != [SpanIDLen]byte{}
}

// TraceIDString renders the trace ID as 32 lowercase hex characters.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString renders the span ID as 16 lowercase hex characters.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// Traceparent renders the context in W3C trace-context form:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceIDString() + "-" + sc.SpanIDString() + "-" + flags
}

// TraceparentHeader is the W3C header name tracing ingests and emits.
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value. Version 00
// must be exactly its four fields (55 characters); future versions
// with the same prefix layout are accepted and may carry extra
// "-"-separated trailing fields, per the spec's forward-compatibility
// rule. ok is false for malformed values and all-zero identifiers.
func ParseTraceparent(s string) (SpanContext, bool) {
	// "xx-" + 32 + "-" + 16 + "-" + 2 == 55 bytes minimum.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if s[0] == 'f' && s[1] == 'f' {
		return SpanContext{}, false // version 0xff is forbidden
	}
	// The spec requires lowercase hex throughout (hex.Decode alone would
	// also admit uppercase).
	if !isHex(s[:2]) || !isHex(s[3:35]) || !isHex(s[36:52]) || !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	if s[:2] == "00" {
		if len(s) != 55 {
			return SpanContext{}, false // version 00 has exactly four fields
		}
	} else if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false // later versions: extra fields are "-"-separated
	}
	var sc SpanContext
	hex.Decode(sc.TraceID[:], []byte(s[3:35]))
	hex.Decode(sc.SpanID[:], []byte(s[36:52]))
	var flags [1]byte
	hex.Decode(flags[:], []byte(s[53:55]))
	if !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newTraceID and newSpanID draw crypto/rand identifiers; on the
// (never-observed) rand failure they fall back to a process-local
// counter so tracing keeps working with distinguishable IDs.
var idFallback atomic.Uint64

func newTraceID() (id [TraceIDLen]byte) {
	if _, err := rand.Read(id[:]); err != nil {
		n := idFallback.Add(1)
		for i := 0; i < 8; i++ {
			id[TraceIDLen-1-i] = byte(n >> (8 * i))
		}
	}
	return id
}

func newSpanID() (id [SpanIDLen]byte) {
	if _, err := rand.Read(id[:]); err != nil {
		n := idFallback.Add(1)
		for i := 0; i < SpanIDLen; i++ {
			id[SpanIDLen-1-i] = byte(n >> (8 * i))
		}
	}
	return id
}

// Well-known root-span attribute keys. The slow-query log is built
// from these: a finished root carrying AttrExpr is a completion-shaped
// request and becomes a SlowQuery entry when it crosses the threshold.
const (
	AttrExpr   = "expr"
	AttrShape  = "shape"
	AttrSchema = "schema"
	AttrEngine = "engine"
)

// TraceConfig configures one TracePipeline.
type TraceConfig struct {
	// SampleRate is the head-sampling probability in [0, 1]. The
	// sampler is deterministic 1-in-N (N = round(1/rate)): exactly every
	// Nth root span is sampled, so accounting is testable and a burst
	// cannot get lucky. 0 disables head sampling (tail rules still
	// apply); >= 1 samples everything.
	SampleRate float64
	// SlowThreshold retains any trace at least this slow regardless of
	// sampling, and feeds the slow-query log. 0 disables the tail rule
	// and the slow log.
	SlowThreshold time.Duration
	// InboundLimit bounds how often an inbound traceparent's sampled
	// flag is honored: anyone who can reach the server can set the flag,
	// and unlimited trust would let one client keep every ring slot and
	// exemplar pinned to its own traffic. 0 trusts every inbound flag
	// (the default — what `pathc -trace` and the acceptance walk rely
	// on); > 0 is a token-bucket rate of client-forced samples per
	// second (burst of max(rate, 1)); < 0 ignores the inbound flag
	// entirely. A denied request is still eligible for head sampling
	// and the tail rules, and is counted in TraceStats.InboundDenied.
	InboundLimit float64
	// BufferSize bounds the retained-trace ring (default 512).
	BufferSize int
	// SlowLogSize bounds the slow-query ring (default 128).
	SlowLogSize int
	// MaxSpans caps the spans recorded per trace (default 256); spans
	// beyond the cap are counted in TraceData.DroppedSpans.
	MaxSpans int
}

// Defaults for the zero TraceConfig fields.
const (
	DefaultTraceBuffer = 512
	DefaultSlowLogSize = 128
	DefaultMaxSpans    = 256
)

func (c TraceConfig) withDefaults() TraceConfig {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultTraceBuffer
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = DefaultSlowLogSize
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = DefaultMaxSpans
	}
	if c.SampleRate < 0 {
		c.SampleRate = 0
	}
	return c
}

// ring is a lock-free bounded overwrite buffer: Put claims the next
// slot with one atomic add and stores through an atomic pointer, so
// writers never block each other or readers; the newest len(slots)
// values win. Snapshot is wait-free and may observe a torn window
// (a slot mid-overwrite yields either the old or the new value, never
// garbage) — exactly the guarantee a diagnostics buffer needs.
type ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64
}

func newRing[T any](n int) *ring[T] {
	return &ring[T]{slots: make([]atomic.Pointer[T], n)}
}

func (r *ring[T]) put(v *T) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// snapshot returns the resident values, newest first.
func (r *ring[T]) snapshot() []*T {
	n := r.next.Load()
	size := uint64(len(r.slots))
	count := n
	if count > size {
		count = size
	}
	out := make([]*T, 0, count)
	for i := uint64(0); i < count; i++ {
		// Walk backwards from the most recently claimed slot.
		v := r.slots[(n-1-i)%size].Load()
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// SpanData is one finished span as retained and served.
type SpanData struct {
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentId,omitempty"`
	Name     string `json:"name"`
	// OffsetMs is the span's start relative to the trace start.
	OffsetMs   float64        `json:"offsetMs"`
	DurationMs float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// TraceData is one finished, retained trace: the root span first,
// children in end order.
type TraceData struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	// Status is the HTTP status of the traced request, when one was
	// reported via SetStatus (0 for synthetic traces).
	Status int `json:"status,omitempty"`
	// Reason says which rule retained the trace: "sampled" (head),
	// "slow", or "error" (tail).
	Reason string `json:"reason"`
	// DroppedSpans counts spans discarded beyond the MaxSpans cap.
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// StageMs is one named stage timing of a slow query.
type StageMs struct {
	Name       string  `json:"name"`
	DurationMs float64 `json:"durationMs"`
}

// SlowQuery is one entry of the slow-query log.
type SlowQuery struct {
	Time       time.Time `json:"time"`
	TraceID    string    `json:"traceId"`
	Route      string    `json:"route"`
	Schema     string    `json:"schema,omitempty"`
	Expr       string    `json:"expr,omitempty"`
	Shape      string    `json:"shape,omitempty"`
	Engine     string    `json:"engine,omitempty"`
	Status     int       `json:"status,omitempty"`
	DurationMs float64   `json:"durationMs"`
	// Stages lists the trace's child spans in end order — where the
	// time went, one line per pipeline stage.
	Stages []StageMs `json:"stages,omitempty"`
}

// TraceStats is the pipeline's self-accounting, exposed for tests and
// the leak drill: every started root must end, and every ended root is
// either retained (by exactly one rule) or discarded.
type TraceStats struct {
	RootsStarted uint64 `json:"rootsStarted"`
	RootsEnded   uint64 `json:"rootsEnded"`
	KeptSampled  uint64 `json:"keptSampled"`
	KeptSlow     uint64 `json:"keptSlow"`
	KeptError    uint64 `json:"keptError"`
	Discarded    uint64 `json:"discarded"`
	SlowLogged   uint64 `json:"slowLogged"`
	// InboundDenied counts requests whose inbound sampled flag was
	// refused by TraceConfig.InboundLimit.
	InboundDenied uint64 `json:"inboundDenied"`
	// ActiveSpans counts spans started and not yet ended (roots and
	// children); zero when the process is idle.
	ActiveSpans int64 `json:"activeSpans"`
}

// TracePipeline owns the sampler, the retained-trace ring, and the
// slow-query ring. All methods are safe for concurrent use and
// nil-safe (a nil pipeline records nothing).
type TracePipeline struct {
	cfg      TraceConfig
	interval uint64        // head sampler: keep every interval-th root; 0 = never, 1 = always
	tick     atomic.Uint64 // request roots
	// synthTick is the synthetic (RecordSynthetic) sampler's own
	// counter: background builds must not perturb the documented
	// deterministic 1-in-N cadence of request sampling.
	synthTick atomic.Uint64
	inbound   *inboundLimiter // nil: trust every inbound sampled flag

	traces *ring[TraceData]
	slow   *ring[SlowQuery]

	rootsStarted  atomic.Uint64
	rootsEnded    atomic.Uint64
	keptSampled   atomic.Uint64
	keptSlow      atomic.Uint64
	keptError     atomic.Uint64
	discarded     atomic.Uint64
	slowLogged    atomic.Uint64
	inboundDenied atomic.Uint64
	activeSpans   atomic.Int64
}

// inboundLimiter is the token bucket behind TraceConfig.InboundLimit:
// rate tokens per second, capped at burst, one token per honored
// client-forced sample. It sits only on the inbound-sampled path, so
// a plain mutex is fine.
type inboundLimiter struct {
	rate, burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newInboundLimiter(rate float64) *inboundLimiter {
	burst := rate
	if burst < 1 {
		burst = 1
	}
	return &inboundLimiter{rate: rate, burst: burst, tokens: burst}
}

func (l *inboundLimiter) allow(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() && now.After(l.last) {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// NewTracePipeline returns a pipeline for cfg (zero fields take the
// documented defaults).
func NewTracePipeline(cfg TraceConfig) *TracePipeline {
	cfg = cfg.withDefaults()
	var interval uint64
	switch {
	case cfg.SampleRate >= 1:
		interval = 1
	case cfg.SampleRate > 0:
		interval = uint64(1/cfg.SampleRate + 0.5)
		if interval == 0 {
			interval = 1
		}
	}
	p := &TracePipeline{
		cfg:      cfg,
		interval: interval,
		traces:   newRing[TraceData](cfg.BufferSize),
		slow:     newRing[SlowQuery](cfg.SlowLogSize),
	}
	if cfg.InboundLimit > 0 {
		p.inbound = newInboundLimiter(cfg.InboundLimit)
	}
	return p
}

// Config returns the pipeline's effective configuration.
func (p *TracePipeline) Config() TraceConfig {
	if p == nil {
		return TraceConfig{}
	}
	return p.cfg
}

// sampleTick is the deterministic 1-in-N sampler over the given tick
// counter; request roots and synthetic traces each bring their own so
// neither perturbs the other's cadence.
func (p *TracePipeline) sampleTick(tick *atomic.Uint64) bool {
	if p.interval == 0 {
		return false
	}
	if p.interval == 1 {
		return true
	}
	return tick.Add(1)%p.interval == 0
}

// headSample decides head sampling for request roots.
func (p *TracePipeline) headSample() bool { return p.sampleTick(&p.tick) }

// allowInbound decides whether to honor one inbound sampled flag.
func (p *TracePipeline) allowInbound(now time.Time) bool {
	if p.cfg.InboundLimit < 0 {
		return false
	}
	if p.inbound == nil {
		return true
	}
	return p.inbound.allow(now)
}

// trace is the per-request aggregator shared by a root span and its
// children. Finished spans append under its mutex — span *collection*
// is request-scoped and brief; only the cross-request store must be
// (and is) lock-free.
type trace struct {
	p       *TracePipeline
	id      [TraceIDLen]byte
	start   time.Time
	sampled bool

	mu        sync.Mutex
	spans     []SpanData
	dropped   int
	finalized bool
}

// Span is one in-flight span. A Span's mutating methods must be
// called from one goroutine (the one running its stage); distinct
// spans of one trace may run and End concurrently. A nil *Span
// no-ops everywhere.
type Span struct {
	t      *trace
	sc     SpanContext
	parent [SpanIDLen]byte
	name   string
	start  time.Time
	attrs  map[string]any
	errMsg string
	root   bool
	status int
	ended  bool
	kept   bool
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartRoot opens the root span of a new trace named name. inbound is
// the parsed traceparent of the caller (zero value when absent): its
// trace ID is adopted and its sampled flag forces head sampling —
// subject to TraceConfig.InboundLimit, since the flag is
// client-controlled — so a client can guarantee its own request is
// retained. The root decides whether the trace records at all: when
// neither sampling nor the slow/error tail rules could possibly
// retain it, StartRoot returns (ctx, nil) and the request runs with
// zero tracing work.
func (p *TracePipeline) StartRoot(ctx context.Context, name string, inbound SpanContext) (context.Context, *Span) {
	if p == nil {
		return ctx, nil
	}
	sampled := false
	if inbound.Sampled {
		if p.allowInbound(time.Now()) {
			sampled = true
		} else {
			p.inboundDenied.Add(1)
		}
	}
	if !sampled {
		sampled = p.headSample()
	}
	// With no head sample and no slow tail rule, only an error could
	// retain the trace — not worth recording every request for; skip.
	if !sampled && p.cfg.SlowThreshold <= 0 {
		return ctx, nil
	}
	t := &trace{p: p, start: time.Now(), sampled: sampled}
	if inbound.Valid() {
		t.id = inbound.TraceID
	} else {
		t.id = newTraceID()
	}
	s := &Span{
		t:     t,
		sc:    SpanContext{TraceID: t.id, SpanID: newSpanID(), Sampled: sampled},
		name:  name,
		start: t.start,
		root:  true,
	}
	if inbound.Valid() {
		s.parent = inbound.SpanID
	}
	p.rootsStarted.Add(1)
	p.activeSpans.Add(1)
	return ContextWithSpan(ctx, s), s
}

// StartSpan opens a child span of the span carried by ctx. When ctx
// carries none (tracing off, or the request was not selected), it
// returns (ctx, nil) — the nil Span no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		t:      parent.t,
		sc:     SpanContext{TraceID: parent.sc.TraceID, SpanID: newSpanID(), Sampled: parent.sc.Sampled},
		parent: parent.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
	s.t.p.activeSpans.Add(1)
	return ContextWithSpan(ctx, s), s
}

// Context returns the span's SpanContext (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the trace's hex ID ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceIDString()
}

// Sampled reports whether the trace was head-sampled — the signal the
// serving layer uses to pay for deeper (per-event) instrumentation.
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// SetError marks the span failed; a failed root retains the trace
// under the error tail rule.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.errMsg = msg
}

// SetStatus records the HTTP status on a root span; >= 500 counts as
// an error for the tail rules.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.status = code
}

// Kept reports — valid on a root span after End — whether the trace
// was retained by any rule. The middleware uses it to only attach
// exemplars that reference a trace /v1/traces can actually serve.
func (s *Span) Kept() bool { return s != nil && s.kept }

// End finishes the span. Ending a root finalizes the whole trace:
// retention is decided, and the trace is pushed to the store (and the
// slow-query log, when applicable). End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	now := time.Now()
	t := s.t
	t.p.activeSpans.Add(-1)
	data := SpanData{
		SpanID:     s.sc.SpanIDString(),
		Name:       s.name,
		OffsetMs:   float64(s.start.Sub(t.start)) / float64(time.Millisecond),
		DurationMs: float64(now.Sub(s.start)) / float64(time.Millisecond),
		Attrs:      s.attrs,
		Error:      s.errMsg,
	}
	if s.parent != [SpanIDLen]byte{} {
		data.ParentID = hex.EncodeToString(s.parent[:])
	}
	if s.root {
		t.p.rootsEnded.Add(1)
		t.finalize(s, data, now)
		return
	}
	t.mu.Lock()
	if t.finalized || len(t.spans) >= t.p.cfg.MaxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, data)
	}
	t.mu.Unlock()
}

// finalize applies the retention rules and publishes the trace.
func (t *trace) finalize(root *Span, rootData SpanData, now time.Time) {
	p := t.p
	dur := now.Sub(t.start)
	reason := ""
	switch {
	case t.sampled:
		reason = "sampled"
		p.keptSampled.Add(1)
	case root.errMsg != "" || root.status >= 500:
		reason = "error"
		p.keptError.Add(1)
	case p.cfg.SlowThreshold > 0 && dur >= p.cfg.SlowThreshold:
		reason = "slow"
		p.keptSlow.Add(1)
	}

	t.mu.Lock()
	t.finalized = true
	children := t.spans
	t.spans = nil
	dropped := t.dropped
	t.mu.Unlock()

	// A reason of "" implies the slow rule did not fire either (the
	// switch above would have picked it up), so nothing retains this
	// trace.
	if reason == "" {
		p.discarded.Add(1)
		return
	}
	root.kept = true
	p.traces.put(&TraceData{
		TraceID:      root.sc.TraceIDString(),
		Name:         root.name,
		Start:        t.start,
		DurationMs:   float64(dur) / float64(time.Millisecond),
		Status:       root.status,
		Reason:       reason,
		DroppedSpans: dropped,
		Spans:        append([]SpanData{rootData}, children...),
	})

	slow := p.cfg.SlowThreshold > 0 && dur >= p.cfg.SlowThreshold

	// Slow-query log: any slow root that looks like a query (carries
	// the expr attribute).
	if slow {
		expr, ok := root.attrs[AttrExpr].(string)
		if !ok {
			return
		}
		sq := &SlowQuery{
			Time:       t.start,
			TraceID:    root.sc.TraceIDString(),
			Route:      root.name,
			Expr:       expr,
			Status:     root.status,
			DurationMs: float64(dur) / float64(time.Millisecond),
		}
		sq.Schema, _ = root.attrs[AttrSchema].(string)
		sq.Shape, _ = root.attrs[AttrShape].(string)
		sq.Engine, _ = root.attrs[AttrEngine].(string)
		for _, c := range children {
			sq.Stages = append(sq.Stages, StageMs{Name: c.Name, DurationMs: c.DurationMs})
		}
		p.slow.put(sq)
		p.slowLogged.Add(1)
	}
}

// RecordSynthetic retains a single-span trace for work that was not
// threaded through a context — a background closure build, say —
// subject to the same rules as a live root: head sampling (at the
// configured rate, but on the synthetic sampler's own tick counter,
// so builds never steal a request's deterministic sample slot), the
// slow threshold, or a non-empty errMsg.
func (p *TracePipeline) RecordSynthetic(name string, start time.Time, d time.Duration, attrs map[string]any, errMsg string) string {
	if p == nil {
		return ""
	}
	p.rootsStarted.Add(1)
	p.rootsEnded.Add(1)
	reason := ""
	switch {
	case p.sampleTick(&p.synthTick):
		reason = "sampled"
		p.keptSampled.Add(1)
	case errMsg != "":
		reason = "error"
		p.keptError.Add(1)
	case p.cfg.SlowThreshold > 0 && d >= p.cfg.SlowThreshold:
		reason = "slow"
		p.keptSlow.Add(1)
	default:
		p.discarded.Add(1)
		return ""
	}
	id := newTraceID()
	sc := SpanContext{TraceID: id, SpanID: newSpanID()}
	td := &TraceData{
		TraceID:    sc.TraceIDString(),
		Name:       name,
		Start:      start,
		DurationMs: float64(d) / float64(time.Millisecond),
		Reason:     reason,
		Spans: []SpanData{{
			SpanID:     sc.SpanIDString(),
			Name:       name,
			DurationMs: float64(d) / float64(time.Millisecond),
			Attrs:      attrs,
			Error:      errMsg,
		}},
	}
	p.traces.put(td)
	return td.TraceID
}

// Traces returns the retained traces, newest first.
func (p *TracePipeline) Traces() []*TraceData {
	if p == nil {
		return nil
	}
	return p.traces.snapshot()
}

// Trace returns the retained trace with the given hex ID, or nil.
func (p *TracePipeline) Trace(id string) *TraceData {
	if p == nil {
		return nil
	}
	for _, t := range p.traces.snapshot() {
		if t.TraceID == id {
			return t
		}
	}
	return nil
}

// SlowQueries returns the slow-query log, newest first.
func (p *TracePipeline) SlowQueries() []*SlowQuery {
	if p == nil {
		return nil
	}
	return p.slow.snapshot()
}

// Stats returns the pipeline's accounting snapshot.
func (p *TracePipeline) Stats() TraceStats {
	if p == nil {
		return TraceStats{}
	}
	return TraceStats{
		RootsStarted:  p.rootsStarted.Load(),
		RootsEnded:    p.rootsEnded.Load(),
		KeptSampled:   p.keptSampled.Load(),
		KeptSlow:      p.keptSlow.Load(),
		KeptError:     p.keptError.Load(),
		Discarded:     p.discarded.Load(),
		SlowLogged:    p.slowLogged.Load(),
		InboundDenied: p.inboundDenied.Load(),
		ActiveSpans:   p.activeSpans.Load(),
	}
}
