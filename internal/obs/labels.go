package obs

import "sync"

// LabelGuard bounds the cardinality of one metric label dimension.
// Prometheus-style vec metrics allocate one child per distinct label
// value forever, so a label fed from anything an operator (or worse, a
// client) controls — schema names from a reloadable directory, say —
// needs a hard cap: the first Cap distinct values pass through
// unchanged, everything after collapses to OverflowLabel. The guard is
// monotone (a value admitted once is admitted always), so time series
// never flap between their own name and the overflow bucket.
type LabelGuard struct {
	mu   sync.Mutex
	cap  int
	seen map[string]struct{}
}

// OverflowLabel is the label value excess cardinality collapses to.
const OverflowLabel = "_other"

// DefaultLabelCap bounds a guarded label dimension when the caller
// does not choose a cap.
const DefaultLabelCap = 100

// NewLabelGuard returns a guard admitting at most cap distinct values
// (cap <= 0 selects DefaultLabelCap).
func NewLabelGuard(cap int) *LabelGuard {
	if cap <= 0 {
		cap = DefaultLabelCap
	}
	return &LabelGuard{cap: cap, seen: make(map[string]struct{})}
}

// Bound returns v when it is (or can still become) one of the admitted
// values, and OverflowLabel once the cap is exhausted. Empty values
// map to OverflowLabel unconditionally. Safe for concurrent use.
func (g *LabelGuard) Bound(v string) string {
	if v == "" {
		return OverflowLabel
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[v]; ok {
		return v
	}
	if len(g.seen) >= g.cap {
		return OverflowLabel
	}
	g.seen[v] = struct{}{}
	return v
}

// Admitted returns the number of distinct values admitted so far.
func (g *LabelGuard) Admitted() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}
