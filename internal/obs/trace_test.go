package obs

// Span-pipeline tests: traceparent parsing, the deterministic head
// sampler's accounting, the tail retention rules and their precedence,
// ring bounds, the per-trace span cap, nil-safety of the whole API,
// and a -race drill proving the pipeline leaks no spans under
// concurrent roots, children, and snapshot readers.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Sampled: true}
	copy(sc.TraceID[:], []byte("0123456789abcdef"))
	copy(sc.SpanID[:], []byte("fedcba98"))
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own output", sc.Traceparent())
	}
	if got != sc {
		t.Errorf("round trip = %+v, want %+v", got, sc)
	}

	sc.Sampled = false
	if !strings.HasSuffix(sc.Traceparent(), "-00") {
		t.Errorf("unsampled flags = %q", sc.Traceparent())
	}
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Errorf("unsampled round trip = %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("reference header rejected: %q", valid)
	}
	// Future versions with the same layout are accepted, including
	// extra "-"-separated fields after the flags; version 00 is exactly
	// four fields, so the same trailing data rejects.
	future := strings.Replace(valid, "00-", "01-", 1)
	for _, s := range []string{future, future + "-extrafield"} {
		if _, ok := ParseTraceparent(s); !ok {
			t.Errorf("forward-compatible value rejected: %q", s)
		}
	}
	for name, s := range map[string]string{
		"empty":                  "",
		"short":                  "00-abc-def-01",
		"bad separators":         strings.Replace(valid, "-", "_", -1),
		"version ff":             strings.Replace(valid, "00-", "ff-", 1),
		"hex version":            strings.Replace(valid, "00-", "0G-", 1),
		"zero trace id":          "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":           "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"uppercase hex":          strings.ToUpper(valid),
		"no 4th dash":            valid + "x",
		"version 00 extra field": valid + "-extrafield",
		"version 00 extra dash":  valid + "-",
		"future version no dash": future + "x",
	} {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("%s: accepted %q as %+v", name, s, sc)
		}
	}
}

// TestHeadSamplerDeterministic: at rate 1/4 exactly every 4th root is
// selected — a burst cannot get lucky and accounting is exact.
func TestHeadSamplerDeterministic(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 0.25})
	kept := 0
	for i := 0; i < 100; i++ {
		_, s := p.StartRoot(context.Background(), "GET /x", SpanContext{})
		if s != nil {
			kept++
			s.End()
		}
	}
	if kept != 25 {
		t.Errorf("sampled %d of 100 at rate 0.25, want exactly 25", kept)
	}
	st := p.Stats()
	if st.RootsStarted != 25 || st.RootsEnded != 25 || st.KeptSampled != 25 {
		t.Errorf("stats = %+v", st)
	}
	// With no slow threshold, unselected requests never become roots at
	// all — the zero-work fast path.
	if st.Discarded != 0 || st.ActiveSpans != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestInboundSampledForcesRetention: a client traceparent with the
// sampled flag guarantees its request is retained under the client's
// trace ID, with the root parented to the client span.
func TestInboundSampledForcesRetention(t *testing.T) {
	p := NewTracePipeline(TraceConfig{}) // zero config: nothing sampled locally
	inbound, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	ctx, root := p.StartRoot(context.Background(), "POST /v1/complete", inbound)
	if root == nil {
		t.Fatal("sampled inbound context did not select the request")
	}
	if !root.Sampled() {
		t.Error("root not sampled")
	}
	if root.TraceID() != inbound.TraceIDString() {
		t.Errorf("trace id = %q, want adopted %q", root.TraceID(), inbound.TraceIDString())
	}
	_, child := StartSpan(ctx, "search")
	child.SetAttr("calls", 7)
	child.End()
	root.End()
	if !root.Kept() {
		t.Error("root.Kept() = false after sampled End")
	}

	td := p.Trace(inbound.TraceIDString())
	if td == nil {
		t.Fatal("trace not retrievable by the inbound ID")
	}
	if td.Reason != "sampled" || len(td.Spans) != 2 {
		t.Fatalf("trace = %+v", td)
	}
	if td.Spans[0].ParentID != inbound.SpanIDString() {
		t.Errorf("root parent = %q, want inbound span %q", td.Spans[0].ParentID, inbound.SpanIDString())
	}
	if td.Spans[1].ParentID != td.Spans[0].SpanID || td.Spans[1].Name != "search" {
		t.Errorf("child span = %+v", td.Spans[1])
	}
	if v, ok := td.Spans[1].Attrs["calls"].(int); !ok || v != 7 {
		t.Errorf("child attrs = %+v", td.Spans[1].Attrs)
	}
}

// TestTailRules: unsampled roots are still retained when slow or
// failed; plain fast successes are discarded; head sampling takes
// precedence in the accounting.
func TestTailRules(t *testing.T) {
	t.Run("slow", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{SlowThreshold: time.Nanosecond})
		_, root := p.StartRoot(context.Background(), "POST /v1/complete", SpanContext{})
		if root == nil {
			t.Fatal("slow threshold set but root not recording")
		}
		root.SetAttr(AttrExpr, "ta~name")
		root.SetAttr(AttrSchema, "university")
		time.Sleep(time.Millisecond)
		root.SetStatus(200)
		root.End()
		if !root.Kept() {
			t.Fatal("slow trace not kept")
		}
		td := p.Trace(root.TraceID())
		if td == nil || td.Reason != "slow" {
			t.Fatalf("trace = %+v", td)
		}
		qs := p.SlowQueries()
		if len(qs) != 1 || qs[0].Expr != "ta~name" || qs[0].Schema != "university" || qs[0].TraceID != root.TraceID() {
			t.Errorf("slow log = %+v", qs)
		}
		if st := p.Stats(); st.KeptSlow != 1 || st.SlowLogged != 1 {
			t.Errorf("stats = %+v", st)
		}
	})

	t.Run("error status", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{SlowThreshold: time.Hour})
		_, root := p.StartRoot(context.Background(), "POST /v1/complete", SpanContext{})
		root.SetStatus(503)
		root.End()
		td := p.Trace(root.TraceID())
		if td == nil || td.Reason != "error" || td.Status != 503 {
			t.Fatalf("trace = %+v", td)
		}
	})

	t.Run("explicit error", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{SlowThreshold: time.Hour})
		_, root := p.StartRoot(context.Background(), "warm", SpanContext{})
		root.SetError("boom")
		root.End()
		td := p.Trace(root.TraceID())
		if td == nil || td.Reason != "error" || td.Spans[0].Error != "boom" {
			t.Fatalf("trace = %+v", td)
		}
	})

	t.Run("fast success discarded", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{SlowThreshold: time.Hour})
		_, root := p.StartRoot(context.Background(), "GET /healthz", SpanContext{})
		root.SetStatus(200)
		root.End()
		if root.Kept() {
			t.Error("fast success kept")
		}
		if len(p.Traces()) != 0 {
			t.Errorf("traces = %+v", p.Traces())
		}
		if st := p.Stats(); st.Discarded != 1 {
			t.Errorf("stats = %+v", st)
		}
	})

	t.Run("sampled wins the accounting over slow", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{SampleRate: 1, SlowThreshold: time.Nanosecond})
		_, root := p.StartRoot(context.Background(), "POST /v1/complete", SpanContext{})
		root.SetAttr(AttrExpr, "ta~name")
		time.Sleep(time.Millisecond)
		root.End()
		st := p.Stats()
		if st.KeptSampled != 1 || st.KeptSlow != 0 {
			t.Errorf("stats = %+v", st)
		}
		// The slow-query log still gets its entry: the two concerns are
		// independent.
		if st.SlowLogged != 1 {
			t.Errorf("slow not logged: %+v", st)
		}
	})
}

// TestRingBounds: the retained-trace ring keeps exactly the newest
// BufferSize traces, newest first.
func TestRingBounds(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 1, BufferSize: 4})
	var last string
	for i := 0; i < 10; i++ {
		_, root := p.StartRoot(context.Background(), "GET /x", SpanContext{})
		root.End()
		last = root.TraceID()
	}
	ts := p.Traces()
	if len(ts) != 4 {
		t.Fatalf("retained %d traces with BufferSize 4", len(ts))
	}
	if ts[0].TraceID != last {
		t.Errorf("snapshot not newest-first: head = %s, want %s", ts[0].TraceID, last)
	}
	if st := p.Stats(); st.KeptSampled != 10 {
		t.Errorf("stats = %+v", st)
	}
}

// TestMaxSpansCap: children beyond MaxSpans are dropped and counted,
// never silently lost.
func TestMaxSpansCap(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 1, MaxSpans: 2})
	ctx, root := p.StartRoot(context.Background(), "GET /x", SpanContext{})
	for i := 0; i < 5; i++ {
		_, c := StartSpan(ctx, "stage")
		c.End()
	}
	root.End()
	td := p.Trace(root.TraceID())
	if td == nil {
		t.Fatal("trace lost")
	}
	if len(td.Spans) != 3 { // root + 2 children
		t.Errorf("spans = %d, want 3", len(td.Spans))
	}
	if td.DroppedSpans != 3 {
		t.Errorf("droppedSpans = %d, want 3", td.DroppedSpans)
	}
	if st := p.Stats(); st.ActiveSpans != 0 {
		t.Errorf("active spans leaked: %+v", st)
	}
}

// TestRecordSynthetic covers the background-build path: sampled,
// error, and discarded outcomes.
func TestRecordSynthetic(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 1})
	id := p.RecordSynthetic("closure.build", time.Now(), 5*time.Millisecond,
		map[string]any{AttrSchema: "university", "outcome": "ready"}, "")
	if id == "" {
		t.Fatal("sampled synthetic trace not retained")
	}
	td := p.Trace(id)
	if td == nil || td.Name != "closure.build" || len(td.Spans) != 1 {
		t.Fatalf("trace = %+v", td)
	}
	if td.Spans[0].Attrs[AttrSchema] != "university" {
		t.Errorf("attrs = %+v", td.Spans[0].Attrs)
	}

	p2 := NewTracePipeline(TraceConfig{})
	if id := p2.RecordSynthetic("closure.build", time.Now(), 0, nil, "build failed"); id == "" {
		t.Error("failed build not retained under the error rule")
	} else if td := p2.Trace(id); td == nil || td.Reason != "error" {
		t.Errorf("trace = %+v", td)
	}
	if id := p2.RecordSynthetic("closure.build", time.Now(), 0, nil, ""); id != "" {
		t.Errorf("unremarkable build retained: %s", id)
	}
	if st := p2.Stats(); st.KeptError != 1 || st.Discarded != 1 || st.RootsStarted != 2 || st.RootsEnded != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSyntheticSamplerIndependent: background builds tick their own
// sampler, so interleaving them must not perturb the documented
// deterministic 1-in-N cadence of request sampling (and vice versa).
func TestSyntheticSamplerIndependent(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 0.25})
	requestKept, synthKept := 0, 0
	for i := 0; i < 100; i++ {
		if p.RecordSynthetic("closure.build", time.Now(), 0, nil, "") != "" {
			synthKept++
		}
		_, s := p.StartRoot(context.Background(), "GET /x", SpanContext{})
		if s != nil {
			requestKept++
			s.End()
		}
	}
	if requestKept != 25 {
		t.Errorf("request roots sampled = %d of 100 at rate 0.25, want exactly 25", requestKept)
	}
	if synthKept != 25 {
		t.Errorf("synthetic traces sampled = %d of 100 at rate 0.25, want exactly 25", synthKept)
	}
}

// TestInboundLimit: the knob that stops an unauthenticated client from
// monopolizing the ring by setting the traceparent sampled flag on
// every request.
func TestInboundLimit(t *testing.T) {
	inbound, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")

	t.Run("bucket refill", func(t *testing.T) {
		l := newInboundLimiter(2)
		now := time.Now()
		for i := 0; i < 2; i++ { // burst == rate
			if !l.allow(now) {
				t.Fatalf("allow %d = false within the burst", i)
			}
		}
		if l.allow(now) {
			t.Error("allow = true with the bucket drained")
		}
		if !l.allow(now.Add(time.Second)) { // 2 tokens refilled, capped at burst
			t.Error("allow = false after a full refill interval")
		}
		if !l.allow(now.Add(time.Second)) {
			t.Error("second refilled token missing")
		}
		if l.allow(now.Add(time.Second)) {
			t.Error("refill exceeded the burst cap")
		}
	})

	t.Run("rate limited", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{InboundLimit: 1})
		_, first := p.StartRoot(context.Background(), "POST /v1/complete", inbound)
		if first == nil {
			t.Fatal("first forced request denied with a token available")
		}
		first.End()
		_, second := p.StartRoot(context.Background(), "POST /v1/complete", inbound)
		if second != nil {
			t.Error("second forced request honored with the bucket drained")
			second.End()
		}
		if st := p.Stats(); st.InboundDenied != 1 {
			t.Errorf("stats = %+v, want 1 inbound denial", st)
		}
	})

	t.Run("ignored entirely", func(t *testing.T) {
		p := NewTracePipeline(TraceConfig{InboundLimit: -1})
		if _, s := p.StartRoot(context.Background(), "POST /v1/complete", inbound); s != nil {
			t.Error("negative limit still honored the inbound flag")
			s.End()
		}
		if st := p.Stats(); st.InboundDenied != 1 {
			t.Errorf("stats = %+v", st)
		}
		// A denied request still gets its fair shot at head sampling.
		p2 := NewTracePipeline(TraceConfig{InboundLimit: -1, SampleRate: 1})
		_, s := p2.StartRoot(context.Background(), "POST /v1/complete", inbound)
		if s == nil {
			t.Fatal("denied inbound flag also suppressed head sampling")
		}
		if s.TraceID() != inbound.TraceIDString() {
			t.Errorf("trace id = %q, want the inbound id still adopted", s.TraceID())
		}
		s.End()
	})
}

// TestNilSafety: every entry point must no-op on nil receivers and
// span-less contexts — this is the disabled fast path.
func TestNilSafety(t *testing.T) {
	var p *TracePipeline
	ctx, root := p.StartRoot(context.Background(), "GET /x", SpanContext{Sampled: true})
	if root != nil {
		t.Fatal("nil pipeline produced a span")
	}
	if s := SpanFromContext(ctx); s != nil {
		t.Fatal("nil pipeline stored a span in ctx")
	}
	_, child := StartSpan(ctx, "stage")
	if child != nil {
		t.Fatal("span-less ctx produced a child")
	}
	// All nil-span methods must be callable.
	child.SetAttr("k", "v")
	child.SetError("e")
	child.SetStatus(500)
	child.End()
	if child.TraceID() != "" || child.Sampled() || child.Kept() || child.Context().Valid() {
		t.Error("nil span accessors not zero-valued")
	}
	if p.Traces() != nil || p.SlowQueries() != nil || p.Trace("x") != nil {
		t.Error("nil pipeline snapshots not nil")
	}
	if st := p.Stats(); st != (TraceStats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	if id := p.RecordSynthetic("x", time.Now(), 0, nil, "err"); id != "" {
		t.Errorf("nil RecordSynthetic = %q", id)
	}
	if cfg := p.Config(); cfg != (TraceConfig{}) {
		t.Errorf("nil config = %+v", cfg)
	}
}

// TestEndIdempotent: a double End must not double-count.
func TestEndIdempotent(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 1})
	_, root := p.StartRoot(context.Background(), "GET /x", SpanContext{})
	root.End()
	root.End()
	if st := p.Stats(); st.RootsEnded != 1 || st.ActiveSpans != 0 || st.KeptSampled != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPipelineConcurrency is the leak drill: many goroutines running
// full root+children traces against a small ring while readers
// snapshot concurrently. Under -race this also proves the lock-free
// store. Afterwards the books must balance exactly.
func TestPipelineConcurrency(t *testing.T) {
	p := NewTracePipeline(TraceConfig{SampleRate: 0.5, SlowThreshold: time.Hour, BufferSize: 8, MaxSpans: 4})
	const workers, perWorker = 8, 200

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshot reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				p.Traces()
				p.SlowQueries()
				p.Stats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, root := p.StartRoot(context.Background(), "GET /x", SpanContext{})
				if root == nil {
					t.Error("slow threshold set but root not recording")
					return
				}
				for c := 0; c < 6; c++ { // deliberately over MaxSpans
					_, s := StartSpan(ctx, "stage")
					s.SetAttr("i", c)
					s.End()
				}
				if w == 0 && i%3 == 0 {
					root.SetStatus(500)
				} else {
					root.SetStatus(200)
				}
				root.End()
			}
		}(w)
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrency drill did not finish")
	}
	close(stop)
	<-readerDone

	st := p.Stats()
	total := uint64(workers * perWorker)
	if st.RootsStarted != total || st.RootsEnded != total {
		t.Errorf("roots = %d started / %d ended, want %d", st.RootsStarted, st.RootsEnded, total)
	}
	if got := st.KeptSampled + st.KeptSlow + st.KeptError + st.Discarded; got != total {
		t.Errorf("retention accounting = %d (%+v), want %d", got, st, total)
	}
	if st.ActiveSpans != 0 {
		t.Errorf("leaked %d active spans", st.ActiveSpans)
	}
	if len(p.Traces()) > 8 {
		t.Errorf("ring over bound: %d", len(p.Traces()))
	}
}

// TestNormalizeRouteTemplates pins the route-template rules the /v1
// surface depends on for metric cardinality.
func TestNormalizeRouteTemplates(t *testing.T) {
	routes := []string{
		"/v1/schemas", "/v1/schemas/{name}", "/v1/schemas/reload",
		"/v1/traces", "/v1/traces/{id}", "/debug/",
	}
	for path, want := range map[string]string{
		"/v1/schemas":            "/v1/schemas",
		"/v1/schemas/university": "/v1/schemas/{name}",
		"/v1/schemas/reload":     "/v1/schemas/reload", // exact beats the template
		"/v1/traces/abc123":      "/v1/traces/{id}",
		"/v1/traces":             "/v1/traces",
		"/v1/schemas/a/b":        "other", // template is one segment only
		"/v1/schemas/":           "other", // template segment must be non-empty
		"/debug/pprof/heap":      "/debug/",
		"/nope":                  "other",
	} {
		if got := NormalizeRoute(routes, path); got != want {
			t.Errorf("NormalizeRoute(%q) = %q, want %q", path, got, want)
		}
	}
}
