package obs

// Go runtime metrics, refreshed lazily on scrape via Registry.OnScrape
// rather than by a background ticker: a serving process should spend
// zero cycles on metrics nobody is reading, and a scrape is exactly
// the moment the values must be fresh. Point-in-time values are
// gauges; monotonic totals are counters (mirrored from the runtime's
// running totals with Counter.SyncTo) so their `_total` names carry
// the type rate() expects.

import "runtime"

// RegisterRuntimeMetrics registers process-level Go runtime metrics on
// r — goroutine count and heap in use as gauges, GC pause time and
// cycle totals as counters — updated at the start of every exposition.
// Safe to call once per registry.
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("go_goroutines",
		"Goroutines currently live in the process.")
	heapInuse := r.Gauge("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans.")
	gcPause := r.Counter("go_gc_pause_nanoseconds_total",
		"Cumulative nanoseconds the process spent in GC stop-the-world pauses.")
	gcRuns := r.Counter("go_gc_cycles_total",
		"Completed GC cycles since process start.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapInuse.Set(int64(ms.HeapInuse))
		gcPause.SyncTo(ms.PauseTotalNs)
		gcRuns.SyncTo(uint64(ms.NumGC))
	})
}
