package obs

// Go runtime gauges, refreshed lazily on scrape via Registry.OnScrape
// rather than by a background ticker: a serving process should spend
// zero cycles on metrics nobody is reading, and a scrape is exactly
// the moment the values must be fresh.

import "runtime"

// RegisterRuntimeMetrics registers process-level Go runtime gauges on
// r — goroutine count, heap in use, total GC pause — updated at the
// start of every exposition. Safe to call once per registry.
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("go_goroutines",
		"Goroutines currently live in the process.")
	heapInuse := r.Gauge("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans.")
	gcPause := r.Gauge("go_gc_pause_total_nanoseconds",
		"Cumulative nanoseconds the process spent in GC stop-the-world pauses.")
	gcRuns := r.Gauge("go_gc_cycles_total",
		"Completed GC cycles since process start.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapInuse.Set(int64(ms.HeapInuse))
		gcPause.Set(int64(ms.PauseTotalNs))
		gcRuns.Set(int64(ms.NumGC))
	})
}
