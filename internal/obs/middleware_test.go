package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalizeRoute(t *testing.T) {
	routes := []string{"/complete", "/metrics", "/debug/pprof/"}
	cases := []struct{ path, want string }{
		{"/complete", "/complete"},
		{"/metrics", "/metrics"},
		{"/debug/pprof/heap", "/debug/pprof/"},
		{"/debug/pprof/", "/debug/pprof/"},
		{"/nope", "other"},
		{"/complete/extra", "other"},
	}
	for _, tc := range cases {
		if got := NormalizeRoute(routes, tc.path); got != tc.want {
			t.Errorf("NormalizeRoute(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestMiddlewareMetricsAndLogging(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))

	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		if m.inFlight.Value() != 1 {
			t.Errorf("in-flight during request = %d", m.inFlight.Value())
		}
		w.Write([]byte("hello"))
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h := m.Wrap(logger, []string{"/ok", "/fail"}, mux)
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, path := range []string{"/ok", "/ok", "/fail", "/unknown"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get(RequestIDHeader) == "" {
			t.Errorf("%s: missing %s response header", path, RequestIDHeader)
		}
		resp.Body.Close()
	}

	// A caller-supplied request ID propagates to the response and log.
	req, _ := http.NewRequest("GET", ts.URL+"/ok", nil)
	req.Header.Set(RequestIDHeader, "trace-me-123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-me-123" {
		t.Errorf("request id = %q, want propagation", got)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`http_requests_total{path="/ok",method="GET",code="200"} 3`,
		`http_requests_total{path="/fail",method="GET",code="500"} 1`,
		`http_requests_total{path="other",method="GET",code="404"} 1`,
		`http_in_flight_requests 0`,
		`http_request_duration_seconds_count{path="/ok"} 3`,
		`# TYPE http_request_duration_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "trace-me-123") {
		t.Errorf("log missing propagated request id:\n%s", logs)
	}
	if !strings.Contains(logs, "status=500") || !strings.Contains(logs, "path=/fail") {
		t.Errorf("log missing failure line:\n%s", logs)
	}
	if got := strings.Count(logs, "msg=request"); got != 5 {
		t.Errorf("log lines = %d, want 5:\n%s", got, logs)
	}
}

func TestMiddlewareNilLogger(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	h := m.Wrap(nil, []string{"/x"}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// No explicit WriteHeader/Write: status must default to 200.
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("status = %d", rr.Code)
	}
	if m.requests.With("/x", "GET", "200").Value() != 1 {
		t.Error("implicit 200 not counted")
	}
}
