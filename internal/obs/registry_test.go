package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text exposition format:
// families sorted by name, HELP then TYPE then samples, histograms as
// cumulative buckets plus _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs processed.").Add(3)
	r.Gauge("queue_depth", "Current queue depth.").Set(7)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	v := r.CounterVec("req_total", "Requests.", "path", "code")
	v.With("/a", "200").Inc()
	v.With("/a", "500").Add(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total 3
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 3
latency_seconds_count 3
# HELP queue_depth Current queue depth.
# TYPE queue_depth gauge
queue_depth 7
# HELP req_total Requests.
# TYPE req_total counter
req_total{path="/a",code="200"} 1
req_total{path="/a",code="500"} 2
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExemplarExposition: exemplars are an OpenMetrics feature. The
// classic 0.0.4 text format must never carry them (its parsers expect
// only an optional timestamp after the value, so one annotated bucket
// line would fail a whole stock-Prometheus scrape), while the
// OpenMetrics rendering annotates the bucket and terminates with
// `# EOF`.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs processed.").Inc()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.5, 1})
	h.ObserveExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")

	var plain strings.Builder
	if err := r.WriteText(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "# {") {
		t.Errorf("0.0.4 exposition carries an exemplar:\n%s", plain.String())
	}
	if strings.Contains(plain.String(), "# EOF") {
		t.Errorf("0.0.4 exposition carries the OpenMetrics terminator:\n%s", plain.String())
	}

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	got := om.String()
	if !strings.Contains(got, `latency_seconds_bucket{le="0.5"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.25`) {
		t.Errorf("OpenMetrics exposition missing the exemplar:\n%s", got)
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", got)
	}
	// OpenMetrics counter families drop the `_total` sample suffix from
	// their metadata lines.
	if !strings.Contains(got, "# TYPE jobs counter") || !strings.Contains(got, "jobs_total 1") {
		t.Errorf("OpenMetrics counter naming wrong:\n%s", got)
	}
}

// TestHandlerContentNegotiation: /metrics speaks OpenMetrics only to
// scrapers that ask for it on the Accept header.
func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{1})
	h.ObserveExemplar(0.5, "abc123")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	fetch := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := fetch("") // stock text-format scraper
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(body, "# {") || strings.Contains(body, "# EOF") {
		t.Errorf("plain scrape carries OpenMetrics syntax:\n%s", body)
	}

	// Prometheus's negotiated OpenMetrics Accept value.
	ct, body = fetch("application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.4")
	if ct != OpenMetricsContentType {
		t.Errorf("negotiated content type = %q", ct)
	}
	if !strings.Contains(body, `# {trace_id="abc123"}`) || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics scrape missing exemplar or terminator:\n%s", body)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Error("re-registering a counter should return the same instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("value = %d", b.Value())
	}
	v := r.CounterVec("y_total", "Y.", "k")
	if v.With("1") != v.With("1") {
		t.Error("same label values should return the same series")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type mismatch should panic")
			}
		}()
		r.Gauge("x_total", "X as a gauge.")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name should panic")
			}
		}()
		r.Counter("bad name", "")
	}()
}

// TestCounterSyncTo: the scrape-time mirror for externally tracked
// monotonic totals never regresses, even when values race.
func TestCounterSyncTo(t *testing.T) {
	var c Counter
	c.SyncTo(10)
	c.SyncTo(7) // stale observation: ignored
	c.SyncTo(12)
	if c.Value() != 12 {
		t.Errorf("counter = %d, want 12", c.Value())
	}
}

func TestGaugeUpDown(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(-5)
	if g.Value() != -4 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 1053 {
		t.Errorf("sum = %g", h.Sum())
	}
	// Raw (non-cumulative) bucket contents: le=1 gets {0.5, 1} —
	// bounds are inclusive upper bounds.
	got := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.counts[3].Load()}
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `e_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

// TestConcurrentUpdates hammers every metric type from several
// goroutines while the exposition path scrapes concurrently; run
// under -race (the Makefile race target) this is the data-race proof
// for the registry.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DefBuckets())
	v := r.CounterVec("v_total", "", "i")

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
				v.With(strconv.Itoa(i % 3)).Inc()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	const total = workers * iters
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var vecSum uint64
	for i := 0; i < 3; i++ {
		vecSum += v.With(strconv.Itoa(i)).Value()
	}
	if vecSum != total {
		t.Errorf("vec sum = %d, want %d", vecSum, total)
	}
}
