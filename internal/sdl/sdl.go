// Package sdl implements a small schema definition language: a
// line-oriented text format for the schemas of package schema, with a
// parser and a round-tripping serializer. It plays the role of Moose's
// schema definition facility in the reproduced system: a way to get
// real schemas in and out of files and stdin for the command-line
// tools.
//
// Grammar (one directive per line, '#' starts a comment):
//
//	schema NAME                         # optional, names the schema
//	class NAME                          # optional, classes auto-create
//	isa SUB SUPER                       # SUB @> SUPER (inverse added)
//	haspart WHOLE PART [NAME [INVNAME]] # WHOLE $> PART
//	assoc A B [NAME [INVNAME]]          # A . B (mutual)
//	attr CLASS NAME PRIM                # CLASS . PRIM under NAME
//
// Relationship names default to the target class name; PRIM is one of
// the primitive class names I, R, C, B.
package sdl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"pathcomplete/internal/connector"
	"pathcomplete/internal/schema"
)

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sdl: line %d: %s", e.Line, e.Msg) }

// Parse reads a schema definition from r and builds the schema.
func Parse(r io.Reader) (*schema.Schema, error) {
	b := schema.NewBuilder("schema")
	st := state{b: b}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := st.directive(fields); err != nil {
			return nil, &ParseError{Line: lineno, Msg: err.Error()}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sdl: %w", err)
	}
	s, err := st.b.Build()
	if err != nil {
		return nil, fmt.Errorf("sdl: %w", err)
	}
	return s, nil
}

// ParseString is Parse over an in-memory definition.
func ParseString(src string) (*schema.Schema, error) {
	return Parse(strings.NewReader(src))
}

// state carries the parse in progress: the builder plus enough
// history to reject a misplaced schema directive.
type state struct {
	b     *schema.Builder
	named bool // a schema directive has been seen
	other bool // a non-schema directive has been seen
}

func (st *state) directive(fields []string) error {
	b := st.b
	argRange := func(min, max int) error {
		n := len(fields) - 1
		if n < min || n > max {
			return fmt.Errorf("%s takes %d-%d arguments, got %d", fields[0], min, max, n)
		}
		return nil
	}
	if fields[0] != "schema" {
		st.other = true
	}
	switch fields[0] {
	case "schema":
		if err := argRange(1, 1); err != nil {
			return err
		}
		if st.named {
			return fmt.Errorf("duplicate schema directive")
		}
		if st.other {
			return fmt.Errorf("schema directive must come first")
		}
		st.named = true
		st.b = schema.NewBuilder(fields[1])
		return nil
	case "class":
		if err := argRange(1, 1); err != nil {
			return err
		}
		b.Class(fields[1])
		return nil
	case "isa":
		if err := argRange(2, 2); err != nil {
			return err
		}
		b.Isa(fields[1], fields[2])
		return nil
	case "haspart":
		if err := argRange(2, 4); err != nil {
			return err
		}
		b.HasPart(fields[1], fields[2], fields[3:]...)
		return nil
	case "assoc":
		if err := argRange(2, 4); err != nil {
			return err
		}
		b.Assoc(fields[1], fields[2], fields[3:]...)
		return nil
	case "attr":
		if err := argRange(3, 3); err != nil {
			return err
		}
		b.Attr(fields[1], fields[2], fields[3])
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// Write serializes s in the format accepted by Parse. Declarations are
// emitted in a stable order: the schema directive, class directives
// for every user class, then one directive per forward relationship.
// Parse(Write(s)) reconstructs a schema with the same classes and
// relationships (IDs may be renumbered).
func Write(w io.Writer, s *schema.Schema) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("schema %s\n", s.Name())
	for _, c := range s.Classes() {
		if !c.Primitive {
			pf("class %s\n", c.Name)
		}
	}
	rels := s.Rels()
	sort.Slice(rels, func(i, j int) bool { return rels[i].ID < rels[j].ID })
	for _, r := range rels {
		from, to := s.Class(r.From).Name, s.Class(r.To).Name
		switch r.Conn {
		case connector.CIsa:
			pf("isa %s %s\n", from, to)
		case connector.CHasPart:
			pf("haspart %s %s %s %s\n", from, to, r.Name, s.Rel(r.Inv).Name)
		case connector.CAssoc:
			if s.Class(r.To).Primitive {
				pf("attr %s %s %s\n", from, r.Name, to)
			} else if r.ID < r.Inv { // emit each mutual pair once
				pf("assoc %s %s %s %s\n", from, to, r.Name, s.Rel(r.Inv).Name)
			}
		}
	}
	return err
}

// WriteString is Write into a string.
func WriteString(s *schema.Schema) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, s); err != nil {
		return "", err
	}
	return sb.String(), nil
}
