package sdl

import (
	"testing"
)

// FuzzParseSDL checks that the schema parser never panics and that
// every successfully parsed schema serializes and reparses to the same
// class and relationship counts.
func FuzzParseSDL(f *testing.F) {
	for _, seed := range []string{
		sample,
		"schema x\nisa a b\n",
		"haspart w p\nassoc a b\nattr a v I\n",
		"# empty\n",
		"class x\nclass x\n",
		"isa a a\n",
		"attr a b Q\n",
		"schema s\nschema s\n",
		"assoc a b n n\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseString(src)
		if err != nil {
			return
		}
		text, err := WriteString(s)
		if err != nil {
			t.Fatalf("WriteString: %v", err)
		}
		s2, err := ParseString(text)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\n%s", err, text)
		}
		if s2.NumClasses() != s.NumClasses() || s2.NumRels() != s.NumRels() {
			t.Fatalf("round trip changed counts: %d/%d classes, %d/%d rels\ninput: %q",
				s2.NumClasses(), s.NumClasses(), s2.NumRels(), s.NumRels(), src)
		}
	})
}
