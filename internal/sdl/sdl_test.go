package sdl

import (
	"strings"
	"testing"
)

const sample = `
# A fragment of the Figure 2 university schema.
schema university

class person
isa student person
isa grad student
haspart university department
haspart department professor faculty members_of
assoc student course take taken_by
attr person name C
attr person ssn I
`

func TestParseSample(t *testing.T) {
	s, err := ParseString(sample)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if s.Name() != "university" {
		t.Errorf("schema name = %q", s.Name())
	}
	if got := s.NumUserClasses(); got != 7 {
		t.Errorf("user classes = %d, want 7", got)
	}
	if got := s.NumRels(); got != 14 {
		t.Errorf("rels = %d, want 14", got)
	}
	dept := s.MustClass("department").ID
	if r, ok := s.OutRel(dept, "faculty"); !ok || s.Class(r.To).Name != "professor" {
		t.Errorf("department.faculty = %+v ok=%v", r, ok)
	}
	prof := s.MustClass("professor").ID
	if _, ok := s.OutRel(prof, "members_of"); !ok {
		t.Error("professor.members_of inverse missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown directive", "frobnicate a b", "unknown directive"},
		{"bad arity", "isa a", "takes 2-2 arguments"},
		{"late schema", "class a\nschema x", "must come first"},
		{"duplicate schema", "schema a\nschema b", "duplicate schema"},
		{"bad attr primitive", "attr a name person", "not a primitive"},
		{"isa cycle", "isa a b\nisa b c\nisa c a", "Isa cycle"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseString("schema x\n\n# comment\nisa a\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T %v, want *ParseError", err, err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := ParseString(sample)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	text, err := WriteString(s)
	if err != nil {
		t.Fatalf("WriteString: %v", err)
	}
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if s2.Name() != s.Name() {
		t.Errorf("round-trip name %q != %q", s2.Name(), s.Name())
	}
	if s2.NumClasses() != s.NumClasses() || s2.NumRels() != s.NumRels() {
		t.Errorf("round-trip counts: classes %d/%d rels %d/%d",
			s2.NumClasses(), s.NumClasses(), s2.NumRels(), s.NumRels())
	}
	// Every relationship survives by (from, name, to, connector).
	for _, r := range s.Rels() {
		from := s.Class(r.From).Name
		r2, ok := s2.OutRel(s2.MustClass(from).ID, r.Name)
		if !ok {
			t.Errorf("round-trip lost %s.%s", from, r.Name)
			continue
		}
		if s2.Class(r2.To).Name != s.Class(r.To).Name || r2.Conn != r.Conn {
			t.Errorf("round-trip changed %s.%s: %v -> %v", from, r.Name, r, r2)
		}
	}
	// Serialization is deterministic.
	text2, err := WriteString(s2)
	if err != nil {
		t.Fatalf("WriteString(s2): %v", err)
	}
	if text2 != text {
		t.Errorf("serialization not stable:\n--- first\n%s--- second\n%s", text, text2)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	s, err := ParseString("  \n# only comments\n\nisa a b # trailing\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got := s.NumUserClasses(); got != 2 {
		t.Errorf("user classes = %d, want 2", got)
	}
}
