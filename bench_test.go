package pathcomplete_test

// One benchmark per exhibit of the paper's evaluation (see DESIGN.md
// §5), plus ablations of the design choices Algorithm 2 relies on.
// Figure-level benches report the paper's own metrics (recall,
// precision, answers, traverse calls) via b.ReportMetric, so
//
//	go test -bench=Figure -benchmem
//
// regenerates the numbers behind Figures 5–7 alongside the time/op.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pathcomplete/internal/closure"
	"pathcomplete/internal/connector"
	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/experiment"
	"pathcomplete/internal/label"
	"pathcomplete/internal/pathexpr"
	"pathcomplete/internal/persist"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/server"
	"pathcomplete/internal/uni"
)

// Shared CUPID-scale fixtures, built once.
var (
	fixtureOnce sync.Once
	fixtureW    *cupid.Workload
	fixtureR    *experiment.Runner
	fixtureErr  error
)

func fixtures(b *testing.B) (*cupid.Workload, *experiment.Runner) {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureW, fixtureErr = cupid.Generate(cupid.DefaultConfig())
		if fixtureErr != nil {
			return
		}
		fixtureR, fixtureErr = experiment.NewRunner(fixtureW, 42, 10)
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureW, fixtureR
}

// BenchmarkTable1ConC measures the CON_c connector composition (Table
// 1): all 196 pairs per iteration.
func BenchmarkTable1ConC(b *testing.B) {
	cs := connector.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range cs {
			for _, y := range cs {
				_ = connector.Con(x, y)
			}
		}
	}
}

// BenchmarkLabelCon measures whole-path label composition with
// semantic-length bookkeeping.
func BenchmarkLabelCon(b *testing.B) {
	prims := connector.Primaries()
	edges := make([]label.Label, len(prims))
	for i, c := range prims {
		edges[i] = label.MustEdge(c)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := label.Identity()
		for k := 0; k < 15; k++ {
			l = label.Con(l, edges[k%len(edges)])
		}
		_ = l.Key()
	}
}

// BenchmarkAggStar measures the AGG* reduction on a mixed label set.
func BenchmarkAggStar(b *testing.B) {
	var ks []label.Key
	for _, c := range connector.All() {
		for f := 0; f < 5; f++ {
			ks = append(ks, label.Key{Conn: c, SemLen: f})
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = label.AggStar(ks, 3)
	}
}

// BenchmarkUniversityTaName measures the paper's flagship completion
// on the Figure 2 schema.
func BenchmarkUniversityTaName(b *testing.B) {
	s := uni.New()
	e := pathexpr.MustParse("ta~name")
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"paper", core.Paper()},
		{"safe", core.Safe()},
		{"exact", core.Exact()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := core.New(s, tc.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := c.Complete(e)
				if err != nil || len(res.Completions) != 2 {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkConstrainedTaName measures the annotated variants of the
// flagship query: a regex-constrained gap (the DFA product folded into
// the compiled traversal), a pushed-down predicate, and the degenerate
// .* constraint that must answer like the unconstrained query. The
// unconstrained lane rides along as the in-run baseline, so one run
// shows the cost of each gap annotation side by side.
func BenchmarkConstrainedTaName(b *testing.B) {
	s := uni.New()
	for _, tc := range []struct {
		name string
		expr string
		want int // expected completion count
	}{
		{"baseline", "ta~name", 2},
		{"regex", "ta~(grad.*)~name", 1},
		{"degenerate", "ta~(.*)~name", 2},
		{"predicate", `ta~name[self != "zz"]`, 2},
		{"composed", `ta~(grad.*)~name[self != "zz"]`, 1},
	} {
		e := pathexpr.MustParse(tc.expr)
		b.Run(tc.name, func(b *testing.B) {
			c := core.New(s, core.Exact())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := c.Complete(e)
				if err != nil || len(res.Completions) != tc.want {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkConstrainedScaling runs a constrained single-gap query on
// generated schemas of growing size — the regex product must scale
// with the traversal, not with the full class count.
func BenchmarkConstrainedScaling(b *testing.B) {
	for _, n := range []int{25, 50, 100} {
		w, err := cupid.Generate(cupid.Config{Classes: n, RelPairs: 2 * n, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		root, anchor := benchPick(b, w.Schema)
		e := pathexpr.MustParse(root + "~(.*)~" + anchor)
		b.Run(benchN(n), func(b *testing.B) {
			c := core.New(w.Schema, core.Exact())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Complete(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPick returns a deterministic non-primitive root and a rel-name
// anchor for the generated schema.
func benchPick(b *testing.B, s *schema.Schema) (root, anchor string) {
	b.Helper()
	for _, c := range s.Classes() {
		if !c.Primitive && root == "" {
			root = c.Name
		}
	}
	for _, r := range s.Rels() {
		if r.Conn != connector.CIsa {
			anchor = r.Name
			break
		}
	}
	if root == "" || anchor == "" {
		b.Fatal("no usable root/anchor in generated schema")
	}
	return root, anchor
}

// BenchmarkFigure5Recall regenerates the Figure 5 series: average
// recall at each E over the 10-query oracle workload. Recall is
// reported as a metric; the paper's value is ~0.90, flat in E.
func BenchmarkFigure5Recall(b *testing.B) {
	_, r := fixtures(b)
	for _, e := range []int{1, 2, 3, 4, 5} {
		b.Run(benchE(e), func(b *testing.B) {
			var pt experiment.EPoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = r.Point(e, false)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Recall, "recall")
			b.ReportMetric(pt.AvgAnswers, "answers")
		})
	}
}

// BenchmarkFigure6Precision regenerates the Figure 6 series: average
// precision at each E, domain independent and with the hub exclusions.
// The paper: 1.00 falling to ~0.55 without domain knowledge, staying
// ~0.93 with it.
func BenchmarkFigure6Precision(b *testing.B) {
	w, r := fixtures(b)
	for _, dk := range []bool{false, true} {
		name := "domain-independent"
		if dk {
			name = "domain-knowledge"
		}
		b.Run(name, func(b *testing.B) {
			for _, e := range []int{1, 5} {
				b.Run(benchE(e), func(b *testing.B) {
					opts := r.Base
					opts.E = e
					if dk {
						opts.Exclude = w.ExcludeHubs()
					}
					cmp := core.New(w.Schema, opts)
					var prec float64
					for i := 0; i < b.N; i++ {
						prec = 0
						for qi, q := range r.Queries {
							res, err := cmp.Complete(q.Expr)
							if err != nil {
								b.Fatal(err)
							}
							_, p := experiment.RecallPrecision(r.Truth(qi), res.Strings())
							prec += p
						}
						prec /= float64(len(r.Queries))
					}
					b.ReportMetric(prec, "precision")
				})
			}
		})
	}
}

// BenchmarkFigure7ResponseTime regenerates Figure 7: the ten oracle
// queries at E=5, reporting average traverse calls per query (the
// paper's complexity measure) alongside wall-clock time.
func BenchmarkFigure7ResponseTime(b *testing.B) {
	w, r := fixtures(b)
	opts := r.Base
	opts.E = 5
	cmp := core.New(w.Schema, opts)
	b.ReportAllocs()
	var calls int
	for i := 0; i < b.N; i++ {
		calls = 0
		for _, q := range r.Queries {
			res, err := cmp.Complete(q.Expr)
			if err != nil {
				b.Fatal(err)
			}
			calls += res.Stats.Calls
		}
	}
	b.ReportMetric(float64(calls)/float64(len(r.Queries)), "calls/query")
}

// BenchmarkEngineComparison compares the three presets and the naive
// enumerator on a mid-sized workload — the cost of exactness.
func BenchmarkEngineComparison(b *testing.B) {
	w, err := cupid.Generate(cupid.Config{Seed: 3, Classes: 40, RelPairs: 80, Hubs: 2, HubFanout: 6})
	if err != nil {
		b.Fatal(err)
	}
	o := cupid.NewOracle(w, 9)
	qs, err := o.Queries(5)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, complete func(pathexpr.Expr) (*core.Result, error)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := complete(q.Expr); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("paper", func(b *testing.B) {
		c := core.New(w.Schema, core.Paper())
		run(b, c.Complete)
	})
	b.Run("safe", func(b *testing.B) {
		c := core.New(w.Schema, core.Safe())
		run(b, c.Complete)
	})
	b.Run("exact", func(b *testing.B) {
		c := core.New(w.Schema, core.Exact())
		run(b, c.Complete)
	})
	b.Run("naive", func(b *testing.B) {
		run(b, func(e pathexpr.Expr) (*core.Result, error) {
			return core.NaiveComplete(w.Schema, e, core.Exact(), 0)
		})
	})
}

// BenchmarkAblation quantifies the individual optimizations of
// Algorithm 2 on the CUPID-scale workload at E=1: the best[T] bound,
// the per-node best[u] test, caution sets, and early target
// exploration.
func BenchmarkAblation(b *testing.B) {
	w, r := fixtures(b)
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"full", func(o *core.Options) {}},
		{"no-bestT", func(o *core.Options) { o.DisableBestT = true }},
		{"no-bestU", func(o *core.Options) { o.DisableBestU = true }},
		{"no-caution", func(o *core.Options) { o.Caution = core.CautionOff }},
		{"no-early-target", func(o *core.Options) { o.NoEarlyTarget = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opts := core.Paper()
			v.mut(&opts)
			cmp := core.New(w.Schema, opts)
			var calls, answers int
			for i := 0; i < b.N; i++ {
				calls, answers = 0, 0
				for _, q := range r.Queries {
					res, err := cmp.Complete(q.Expr)
					if err != nil {
						b.Fatal(err)
					}
					calls += res.Stats.Calls
					answers += len(res.Completions)
				}
			}
			b.ReportMetric(float64(calls)/float64(len(r.Queries)), "calls/query")
			b.ReportMetric(float64(answers)/float64(len(r.Queries)), "answers/query")
		})
	}
}

// BenchmarkSchemaScaling sweeps the generator size: completion cost as
// the schema grows.
func BenchmarkSchemaScaling(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		b.Run(benchN(n), func(b *testing.B) {
			w, err := cupid.Generate(cupid.Config{
				Seed: 5, Classes: n, RelPairs: 2 * n, Hubs: 2, HubFanout: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			o := cupid.NewOracle(w, 13)
			qs, err := o.Queries(3)
			if err != nil {
				b.Skip("oracle could not build queries at this size")
			}
			cmp := core.New(w.Schema, core.Paper())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := cmp.Complete(q.Expr); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkClosureUniversityTaName measures the paper's flagship
// warm single-gap point query both ways: through the search kernel
// (the cost of every such query before the closure index existed) and
// as a lookup into the materialized all-pairs index (the serving hot
// path once background warming finishes). The closure tentpole
// targets >=10x between the two series; the build sub-bench prices
// the one-time warming the speedup is bought with.
func BenchmarkClosureUniversityTaName(b *testing.B) {
	s := uni.New()
	e := pathexpr.MustParse("ta~name")
	cmp := core.New(s, core.Exact())

	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cmp.Complete(e)
			if err != nil || len(res.Completions) != 2 {
				b.Fatalf("res=%v err=%v", res, err)
			}
		}
	})

	ix, err := closure.Build(context.Background(), "university", 1, cmp, nil)
	if err != nil {
		b.Fatal(err)
	}
	root := s.MustClass("ta").ID
	b.Run("lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, ok := ix.Lookup(root, "name")
			if !ok || len(res.Completions) != 2 {
				b.Fatalf("res=%v ok=%v", res, ok)
			}
		}
	})

	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := closure.Build(context.Background(), "university", 1, cmp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdstart prices the restart decision on a 1000-class
// generated schema: warming the all-pairs closure by search from
// scratch (what every restart paid before durable snapshots) versus
// restoring it from the checksummed on-disk file, validation and all.
// The disk series is the robustness tentpole's >=10x claim; the
// rebuild series is the bill it avoids.
//
// The relationship count stays near the containment backbone (tree-
// like): every cross edge beyond the tree multiplies the simple paths
// the exhaustive sweep must enumerate, and at this class count even a
// few percent extra edges move one rebuild from tens of seconds into
// hours. The restore series is indifferent to density — it decodes
// cells instead of searching — which is exactly the asymmetry the
// durable snapshot exploits.
func BenchmarkColdstart(b *testing.B) {
	const name = "cupid1k"
	w, err := cupid.Generate(cupid.Config{
		Seed: 7, Classes: 1000, RelPairs: 760, Hubs: 0, HubFanout: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	cmp := core.New(w.Schema, core.Exact())
	ix, err := closure.Build(context.Background(), name, 1, cmp, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := persist.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	f, err := persist.Capture(name, w.Schema, core.Exact(), 1, 0, ix)
	if err != nil {
		b.Fatal(err)
	}
	if err := ps.Save(f); err != nil {
		b.Fatal(err)
	}
	ps.Flush()

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := closure.Build(context.Background(), name, 1, cmp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := ps.Restore(name, w.Schema, core.Exact(), 1)
			if err != nil || got == nil {
				b.Fatalf("restore: (%v, %v)", got, err)
			}
			if got.Cells() != ix.Cells() {
				b.Fatalf("restored %d cells, built %d", got.Cells(), ix.Cells())
			}
		}
	})
}

// BenchmarkServerComplete measures the HTTP front end: a cold
// completion (fresh server per iteration set, first request computes)
// versus the memoized hot path an interactive loop sees.
func BenchmarkServerComplete(b *testing.B) {
	body := `{"expr":"ta~name"}`
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sv := server.New(uni.New(), nil, core.Exact())
			ts := httptest.NewServer(sv.Handler())
			resp, err := http.Post(ts.URL+"/complete", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ts.Close()
		}
	})
	b.Run("hot", func(b *testing.B) {
		sv := server.New(uni.New(), nil, core.Exact())
		ts := httptest.NewServer(sv.Handler())
		defer ts.Close()
		// Warm the cache.
		if resp, err := http.Post(ts.URL+"/complete", "application/json", strings.NewReader(body)); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/complete", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

// BenchmarkEvalStore measures path-expression evaluation over the
// sample object store (the Figure 1 evaluator).
func BenchmarkEvalStore(b *testing.B) {
	st := uni.SampleStore()
	r, err := pathexpr.Resolve(st.Schema(), pathexpr.MustParse("department$>professor@>teacher.teach.name"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := st.Eval(r); len(got) != 2 {
			b.Fatalf("eval = %v", got)
		}
	}
}

func benchE(e int) string { return "E=" + strconv.Itoa(e) }

func benchN(n int) string {
	switch n {
	case 25:
		return "classes=25"
	case 50:
		return "classes=50"
	case 100:
		return "classes=100"
	default:
		return "classes=200"
	}
}
