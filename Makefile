# Development entry points. Everything is plain `go` underneath; the
# targets just bundle the common invocations.

GO ?= go

.PHONY: all build test test-race race cover bench bench-obs experiments fuzz fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Alias: the race detector over the whole module (CI gate for the
# concurrency of the metrics registry and the server cache).
race: test-race

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem -run xxx .

# Demonstrate that the observability layer costs ~nothing when off:
# compare nil vs noop vs recording tracers on the flagship query.
bench-obs:
	$(GO) test -bench=TracerOverhead -benchmem -count=5 -run xxx ./internal/core

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -all

# Continuous fuzzing of the two parsers (Ctrl-C to stop).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/pathexpr
	$(GO) test -fuzz=FuzzParseSDL -fuzztime=30s ./internal/sdl

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out test_output.txt bench_output.txt
