# Development entry points. Everything is plain `go` underneath; the
# targets just bundle the common invocations.

GO ?= go

.PHONY: all build test test-race race cover cover-gate bench bench-json bench-closure bench-smoke bench-obs bench-trace bench-coldstart bench-coldstart-smoke bench-constrained bench-constrained-smoke experiments fuzz fuzz-smoke chaos chaos-persist chaos-sessions fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Alias: the race detector over the whole module (CI gate for the
# concurrency of the metrics registry and the server cache).
race: test-race

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

# Coverage gate (CI): the search kernel, the multi-schema registry,
# the all-pairs closure index, and the interactive-session machinery
# (session state machine + WebSocket framing) are the subsystems whose
# regressions are silent (a wrong cached/materialized/streamed answer
# still looks like success), so their combined statement coverage must
# stay >= 80%.
COVER_GATE_MIN ?= 80.0
cover-gate:
	$(GO) test -coverprofile=cover_gate.out \
		-coverpkg=./internal/core/...,./internal/registry/...,./internal/closure/...,./internal/session,./internal/ws \
		./internal/core/... ./internal/registry/... ./internal/closure/... ./internal/server/... ./internal/session/... ./internal/ws/...
	@total=$$($(GO) tool cover -func=cover_gate.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "combined core+registry+session coverage: $$total% (gate: $(COVER_GATE_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_GATE_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "coverage gate FAILED: $$total% < $(COVER_GATE_MIN)%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem -run xxx .

# The tracked benchmark set as machine-readable JSON, for tracking
# time/op and allocs/op across commits (see README "Performance").
# Covers the search-kernel series plus the closure-vs-kernel point
# query — the lookup/search ratio is the tentpole >=10x claim.
TRACKED_BENCH = UniversityTaName|SchemaScaling|ClosureUniversityTaName
bench-json:
	$(GO) test -bench='$(TRACKED_BENCH)' -benchmem -run xxx . \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# Alias used by the closure work: regenerate the tracked series after
# touching the all-pairs index or the kernel it mirrors.
bench-closure: bench-json

# CI-sized variant: one iteration per benchmark, just enough to prove
# the benchmarks still run and the JSON pipeline still parses.
bench-smoke:
	$(GO) test -bench='$(TRACKED_BENCH)' -benchtime=1x -benchmem -run xxx . \
		| $(GO) run ./cmd/benchjson > /dev/null

# Demonstrate that the observability layer costs ~nothing when off:
# compare nil vs noop vs recording tracers on the flagship query.
bench-obs:
	$(GO) test -bench=TracerOverhead -benchmem -count=5 -run xxx ./internal/core

# The tracing cost ledger: the tracked kernel series plus the
# tracer-overhead comparison, folded into BENCH_core.json. The
# tracing-disabled numbers here are what the span pipeline must not
# move (the <2% / zero-alloc pin; see TestWarmCompleteAllocs for the
# enforced guard).
bench-trace:
	{ $(GO) test -bench='$(TRACKED_BENCH)' -benchmem -run xxx . ; \
	  $(GO) test -bench=TracerOverhead -benchmem -run xxx ./internal/core ; } \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# The durable-state cost ledger: the tracked kernel series plus the
# coldstart comparison (restore the 1000-class closure from its
# checksummed on-disk file vs rebuild it by search), folded into
# BENCH_core.json. The disk/rebuild ratio is the restart guarantee the
# persistence tentpole sells: >=10x.
bench-coldstart:
	{ $(GO) test -bench='$(TRACKED_BENCH)' -benchmem -run xxx . ; \
	  $(GO) test -bench=TracerOverhead -benchmem -run xxx ./internal/core ; \
	  $(GO) test -bench=Coldstart -benchmem -run xxx -timeout 30m . ; } \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# CI-sized variant: one iteration per series, enough to prove restore
# and rebuild still agree cell-for-cell on the big schema.
bench-coldstart-smoke:
	$(GO) test -bench=Coldstart -benchtime=1x -benchmem -run xxx -timeout 30m . \
		| $(GO) run ./cmd/benchjson > /dev/null

# The gap-annotation cost ledger: the tracked kernel series plus the
# constrained lanes (regex-constrained gap, pushed-down predicate,
# degenerate .* constraint, and their composition — each against the
# in-run unconstrained baseline), folded into BENCH_core.json. The
# unconstrained baseline is the number the annotations must not move;
# its alloc bound is enforced by TestWarmCompleteAllocs in CI.
bench-constrained:
	$(GO) test -bench='$(TRACKED_BENCH)|Constrained' -benchmem -run xxx . \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# CI-sized variant: one iteration per lane, enough to prove the
# constrained benchmarks still run (the regex/predicate kernels still
# answer with the pinned completion counts) and the JSON still parses.
bench-constrained-smoke:
	$(GO) test -bench=Constrained -benchtime=1x -benchmem -run xxx . \
		| $(GO) run ./cmd/benchjson > /dev/null

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -all

# Continuous fuzzing of the two parsers and the end-to-end completion
# round trip (Ctrl-C to stop).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=5m ./internal/pathexpr
	$(GO) test -fuzz=FuzzParseSDL -fuzztime=5m ./internal/sdl
	$(GO) test -fuzz=FuzzCompleteRoundTrip -fuzztime=5m ./internal/core
	$(GO) test -fuzz=FuzzSessionProtocol -fuzztime=5m ./internal/session

# CI-sized fuzzing: 30s per target, enough to catch parser and search
# regressions without holding up the pipeline.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s -run FuzzParse ./internal/pathexpr
	$(GO) test -fuzz=FuzzParseSDL -fuzztime=30s -run FuzzParseSDL ./internal/sdl
	$(GO) test -fuzz=FuzzCompleteRoundTrip -fuzztime=30s -run FuzzCompleteRoundTrip ./internal/core
	$(GO) test -fuzz=FuzzSessionProtocol -fuzztime=30s -run FuzzSessionProtocol ./internal/session

# The chaos drill on its own: fault injection under the race detector
# with concurrent clients (internal/server/chaos_test.go).
chaos:
	$(GO) test -race -run TestChaos -count=1 -v ./internal/server

# The crash/restart drill over durable state: 50 kill-9/restart cycles
# sharing one data directory, with injected disk faults, torn writes,
# and post-mortem file corruption — every boot differential-checked
# against a fresh compile (internal/registry/chaos_test.go), under the
# race detector.
chaos-persist:
	$(GO) test -race -run TestChaosPersist -count=1 -v ./internal/registry

# The interactive-session drill: 2000 concurrent WebSocket keystroke
# sessions against one server while a reloader hot-swaps the schema and
# fault injection corrupts sends and searches, under the race detector.
# Passes only if every session unwinds (zero leaked sessions, admission
# slots, snapshot refs, or goroutines) and a fresh session still
# completes afterwards (internal/server/sessions_test.go).
CHAOS_SESSIONS ?= 2000
chaos-sessions:
	PATHCOMPLETE_CHAOS_SESSIONS=$(CHAOS_SESSIONS) \
		$(GO) test -race -run TestChaosSessions -count=1 -v -timeout 10m ./internal/server

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out cover_gate.out test_output.txt bench_output.txt
