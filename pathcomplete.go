// Package pathcomplete disambiguates incomplete path expressions over
// object-oriented database schemas, reproducing Ioannidis & Lashkari,
// "Incomplete Path Expressions and their Disambiguation" (SIGMOD
// 1994).
//
// An incomplete path expression leaves part of its navigation
// unspecified with the ~ connector:
//
//	ta ~ name        →  ta@>grad@>student@>person.name
//	                    ta@>instructor@>teacher@>employee@>person.name
//
// The completer maps disambiguation to an optimal path computation
// over the schema graph: path labels compose connectors through the
// CON_c table and accumulate semantic length, and the AGG* function
// keeps the most cognitively plausible labels (strongest relationship
// kinds first, shortest semantic distance second).
//
// Quick start:
//
//	s := pathcomplete.University()
//	c := pathcomplete.NewCompleter(s, pathcomplete.Exact())
//	res, err := c.Complete(pathcomplete.MustParseExpr("ta~name"))
//	for _, comp := range res.Completions {
//		fmt.Println(comp.Path, comp.Label)
//	}
//
// This package is a thin facade; see the doc comments in the internal
// packages for the full story: internal/connector (the connector
// algebra, Table 1 and Figure 3), internal/label (CON, semantic
// length, AGG*), internal/core (the search, Algorithm 2),
// internal/objstore and internal/fox (evaluation and the Figure 1
// loop), internal/cupid and internal/experiment (the Section 5
// reproduction).
package pathcomplete

import (
	"io"

	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/feedback"
	"pathcomplete/internal/fox"
	"pathcomplete/internal/objstore"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/pathexpr"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/uni"
)

// Schema is an immutable object-oriented schema graph; build one with
// NewSchemaBuilder or ParseSDL.
type Schema = schema.Schema

// SchemaBuilder assembles a Schema.
type SchemaBuilder = schema.Builder

// ClassID identifies a class within a Schema.
type ClassID = schema.ClassID

// NewSchemaBuilder returns a builder for a schema with the given
// display name, pre-populated with the primitive classes I, R, C, B.
func NewSchemaBuilder(name string) *SchemaBuilder { return schema.NewBuilder(name) }

// ParseSDL reads a schema from its text form (see the sdl package for
// the format: schema/class/isa/haspart/assoc/attr directives).
func ParseSDL(r io.Reader) (*Schema, error) { return sdl.Parse(r) }

// ParseSDLString is ParseSDL over a string.
func ParseSDLString(src string) (*Schema, error) { return sdl.ParseString(src) }

// WriteSDL serializes a schema in the format ParseSDL accepts.
func WriteSDL(w io.Writer, s *Schema) error { return sdl.Write(w, s) }

// Expr is a parsed path expression, possibly incomplete (containing ~
// steps).
type Expr = pathexpr.Expr

// Resolved is a complete path expression bound to a schema.
type Resolved = pathexpr.Resolved

// ParseExpr parses a path expression such as "ta~name" or
// "student.take.teacher".
func ParseExpr(src string) (Expr, error) { return pathexpr.Parse(src) }

// MustParseExpr is ParseExpr, panicking on error.
func MustParseExpr(src string) Expr { return pathexpr.MustParse(src) }

// Completer disambiguates incomplete path expressions over one schema.
type Completer = core.Completer

// Options configure a Completer; start from Paper, Safe, or Exact.
type Options = core.Options

// Completion is one optimal completion with its label.
type Completion = core.Completion

// Result is the outcome of completing one expression.
type Result = core.Result

// Paper returns the configuration of the algorithm exactly as
// published (Algorithm 2 with Section 4.1 caution sets).
func Paper() Options { return core.Paper() }

// Safe returns the near-exact heuristic configuration (extended
// caution sets and semantic-length slack).
func Safe() Options { return core.Safe() }

// Exact returns the configuration that provably computes the
// definitional answer set.
func Exact() Options { return core.Exact() }

// NewCompleter returns a Completer over the schema.
func NewCompleter(s *Schema, opts Options) *Completer { return core.New(s, opts) }

// Store is an in-memory object database over a schema.
type Store = objstore.Store

// OID identifies an object in a Store.
type OID = objstore.OID

// NewStore returns an empty object store over the schema.
func NewStore(s *Schema) *Store { return objstore.New(s) }

// Interp runs the complete query loop of the paper's Figure 1: parse →
// complete → approve → evaluate.
type Interp = fox.Interp

// Chooser resolves completion ambiguity (stands in for the user).
type Chooser = fox.Chooser

// AcceptAll approves every candidate completion.
func AcceptAll(cands []Completion) []int { return fox.AcceptAll(cands) }

// AcceptFirst approves only the best-ranked candidate.
func AcceptFirst(cands []Completion) []int { return fox.AcceptFirst(cands) }

// NewInterp returns a query interpreter over the store.
func NewInterp(store *Store, opts Options, chooser Chooser) *Interp {
	return fox.New(store, opts, chooser)
}

// University returns the paper's Figure 2 example schema.
func University() *Schema { return uni.New() }

// UniversityStore returns the Figure 2 schema populated with sample
// objects.
func UniversityStore() *Store { return uni.SampleStore() }

// Parts returns the mechanical-assembly schema of the paper's Section
// 3.3.1 examples.
func Parts() *Schema { return parts.New() }

// Explain writes a human-readable derivation of a completion: the
// connector composition and semantic-length accumulation edge by edge.
func Explain(w io.Writer, c Completion) error { return core.Explain(w, c) }

// FeedbackLearner accumulates user accept/reject feedback and
// nominates domain-knowledge exclusions — the learning extension
// sketched in the paper's conclusions.
type FeedbackLearner = feedback.Learner

// NewFeedbackLearner returns an empty learner for the schema.
func NewFeedbackLearner(s *Schema) *FeedbackLearner { return feedback.NewLearner(s) }

// CupidConfig parameterizes the CUPID-scale synthetic schema
// generator.
type CupidConfig = cupid.Config

// CupidWorkload is a generated CUPID-scale schema with hub metadata.
type CupidWorkload = cupid.Workload

// DefaultCupidConfig matches the published CUPID shape (92 classes,
// 364 relationships).
func DefaultCupidConfig() CupidConfig { return cupid.DefaultConfig() }

// GenerateCupid builds a synthetic CUPID-scale workload.
func GenerateCupid(cfg CupidConfig) (*CupidWorkload, error) { return cupid.Generate(cfg) }
