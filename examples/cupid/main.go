// Cupid exercises the completer at the scale of the paper's
// experiments: the synthetic 92-class / 364-relationship plant-growth
// schema, with per-query traversal statistics and the
// domain-knowledge effect.
package main

import (
	"fmt"
	"log"
	"time"

	"pathcomplete"
)

func main() {
	w, err := pathcomplete.GenerateCupid(pathcomplete.DefaultCupidConfig())
	if err != nil {
		log.Fatal(err)
	}
	s := w.Schema
	fmt.Printf("CUPID-scale schema: %d user classes, %d relationships, hubs: ",
		s.NumUserClasses(), s.NumRels())
	for _, h := range w.Hubs {
		fmt.Printf("%s ", s.Class(h).Name)
	}
	fmt.Println()

	queries := []string{
		"canopy~temperature",
		"experiment~leaf_area_index",
		"soil_profile~value",
		"plant_model~conductance",
	}

	run := func(title string, opts pathcomplete.Options) {
		fmt.Printf("\n== %s ==\n", title)
		c := pathcomplete.NewCompleter(s, opts)
		for _, q := range queries {
			start := time.Now()
			res, err := c.Complete(pathcomplete.MustParseExpr(q))
			if err != nil {
				fmt.Printf("%-35s error: %v\n", q, err)
				continue
			}
			fmt.Printf("%-35s %3d answers, %6d calls, %8s\n",
				q, len(res.Completions), res.Stats.Calls, time.Since(start).Round(time.Microsecond))
			for i, comp := range res.Completions {
				if i == 2 {
					fmt.Printf("    ... and %d more\n", len(res.Completions)-2)
					break
				}
				fmt.Printf("    %-72s %s\n", comp.Path, comp.Label)
			}
		}
	}

	run("paper algorithm, E=1", pathcomplete.Paper())

	e5 := pathcomplete.Paper()
	e5.E = 5
	run("paper algorithm, E=5 (wider answer sets)", e5)

	dk := pathcomplete.Paper()
	dk.E = 5
	dk.Exclude = w.ExcludeHubs()
	run("E=5 with domain knowledge (hub classes excluded)", dk)
}
