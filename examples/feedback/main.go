// Feedback demonstrates the learning extension from the paper's
// conclusions: a simulated user works through ambiguous queries,
// accepting and rejecting proposed completions; the learner watches,
// discovers which classes only ever appear on rejected readings, and
// turns them into the domain-knowledge exclusions of Section 5.2 —
// automatically recovering the precision the hand-specified exclusions
// bought in the paper's experiment.
package main

import (
	"fmt"
	"log"
	"strings"

	"pathcomplete"
	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/feedback"
	"pathcomplete/internal/pathexpr"
)

func main() {
	w, err := cupid.Generate(cupid.Config{
		Seed: 33, Classes: 50, RelPairs: 100, Hubs: 2, HubFanout: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema: %d classes, hubs to discover: ", w.Schema.NumUserClasses())
	for _, h := range w.Hubs {
		fmt.Printf("%q ", w.Schema.Class(h).Name)
	}
	fmt.Println()

	oracle := cupid.NewOracle(w, 8)
	queries, err := oracle.Queries(12)
	if err != nil {
		log.Fatal(err)
	}

	// The user works at E=3 so the mildly implausible readings (the
	// hub detours among them) get proposed — and refused.
	opts := core.Paper()
	opts.E = 3
	cmp := pathcomplete.NewCompleter(w.Schema, opts)
	base := pathcomplete.NewCompleter(w.Schema, core.Paper())

	learner := feedback.NewLearner(w.Schema)
	for _, q := range queries {
		res, err := cmp.Complete(q.Expr)
		if err != nil {
			log.Fatal(err)
		}
		e1, err := base.Complete(q.Expr)
		if err != nil {
			log.Fatal(err)
		}
		truth := map[string]bool{}
		for _, p := range oracle.Adjudicate(q, e1) {
			truth[p] = true
		}
		var accepted, rejected []*pathexpr.Resolved
		for _, c := range res.Completions {
			if truth[c.Path.String()] {
				accepted = append(accepted, c.Path)
			} else {
				rejected = append(rejected, c.Path)
			}
		}
		fmt.Printf("%-40s proposed %3d, accepted %d\n", q.Expr, len(res.Completions), len(accepted))
		if err := learner.Observe(accepted, rejected); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nmost-rejected classes:")
	for i, row := range learner.Report() {
		if i == 6 {
			break
		}
		fmt.Printf("  %s\n", row)
	}

	learned := learner.Exclusions(3, 1.0)
	var names []string
	hubHits := 0
	for cls := range learned {
		names = append(names, w.Schema.Class(cls).Name)
		if w.IsHub(cls) {
			hubHits++
		}
	}
	fmt.Printf("\nlearned exclusions: {%s}\n", strings.Join(names, ", "))
	fmt.Printf("hub classes rediscovered: %d of %d\n", hubHits, len(w.Hubs))
}
