// University walks through every worked example of Sections 1–4 of
// the paper on the Figure 2 schema: the ta~name flagship, the
// motivating department~course question, node-to-node completion,
// domain knowledge, and the effect of the E parameter.
package main

import (
	"fmt"
	"log"

	"pathcomplete"
)

func main() {
	s := pathcomplete.University()
	fmt.Printf("Figure 2 schema: %d classes, %d relationships\n\n",
		s.NumUserClasses(), s.NumRels())

	c := pathcomplete.NewCompleter(s, pathcomplete.Exact())

	// Section 2.2.2: the names of all teaching assistants.
	show(c, "ta~name")

	// Section 1: "What are the courses of the Arts department?" The
	// system proposes both plausible readings; the user picks.
	show(c, "department~course")

	// Section 3 node-to-node form: how is a TA a person? Multiple
	// inheritance yields two incomparable Isa chains, resolved by the
	// user (Section 4.3).
	res, err := c.CompleteToClass("ta", "person")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ta ~~> person:")
	print(res)

	// Section 4.4: E widens the answer set with the next semantic
	// lengths — here the May-Be detours (courses a TA's fellow
	// students take, etc.).
	opts := pathcomplete.Exact()
	opts.E = 2
	c2 := pathcomplete.NewCompleter(s, opts)
	show(c2, "ta~course")

	// Section 5.2 domain knowledge: excluding the employee class kills
	// the instructor reading of ta~name.
	optsX := pathcomplete.Exact()
	optsX.Exclude = map[pathcomplete.ClassID]bool{s.MustClass("employee").ID: true}
	cX := pathcomplete.NewCompleter(s, optsX)
	fmt.Println("ta~name with class employee excluded:")
	show(cX, "ta~name")
}

func show(c *pathcomplete.Completer, src string) {
	res, err := c.Complete(pathcomplete.MustParseExpr(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", src)
	print(res)
}

func print(res *pathcomplete.Result) {
	if len(res.Completions) == 0 {
		fmt.Println("  (no consistent completion)")
	}
	for _, comp := range res.Completions {
		fmt.Printf("  %-60s %s\n", comp.Path, comp.Label)
	}
	fmt.Printf("  [%d traverse calls, %d complete paths offered]\n\n",
		res.Stats.Calls, res.Stats.Offers)
}
