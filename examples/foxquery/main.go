// Foxquery runs the complete query loop of the paper's Figure 1
// against a populated object store: parse → complete → (simulated)
// user approval → evaluate.
package main

import (
	"fmt"
	"log"

	"pathcomplete"
)

func main() {
	store := pathcomplete.UniversityStore()

	// The chooser plays the user in the approval loop. Here: approve
	// everything, and show what each reading would return.
	in := pathcomplete.NewInterp(store, pathcomplete.Exact(), pathcomplete.AcceptAll)

	for _, q := range []string{
		"ta ~ name",           // names of teaching assistants
		"department ~ course", // the motivating question of Section 1
		"university ~ ssn",    // soc-sec numbers of everyone at the university
		"student.take.name",   // complete queries evaluate directly
	} {
		ans, err := in.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		for _, c := range ans.Candidates {
			fmt.Printf("  candidate: %-55s %s\n", c.Path, c.Label)
		}
		fmt.Printf("  answer: %v\n\n", ans.Values)
	}

	// A pickier user: approve only the top-ranked reading.
	first := pathcomplete.NewInterp(store, pathcomplete.Exact(), pathcomplete.AcceptFirst)
	ans, err := first.Query("department~course")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("department~course, first reading only: %s\n  answer: %v\n\n",
		ans.Chosen[0].Path, ans.Values)

	// Selection predicates filter the evaluated answers: the
	// departments' courses worth more than 3 credits.
	sel, err := in.Query("department ~ course where credits > 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a where clause (%v): %v\n", sel.Where, sel.Values)
}
