// Quickstart: build a small schema, ask an ambiguous question, get the
// plausible readings.
package main

import (
	"fmt"
	"log"

	"pathcomplete"
)

func main() {
	// An online-shop schema: orders contain line items, customers
	// place orders, products have prices.
	b := pathcomplete.NewSchemaBuilder("shop")
	b.Isa("premium_customer", "customer")
	b.Assoc("customer", "order", "places", "placed_by")
	b.HasPart("order", "line_item")
	b.Assoc("line_item", "product", "product", "ordered_in")
	b.Attr("product", "price", "R")
	b.Attr("line_item", "price", "R") // the negotiated per-line price
	b.Attr("customer", "name", "C")
	b.Attr("order", "total", "R")
	s, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// "The prices of a premium customer" — of what, exactly? Let the
	// completer fill the gap.
	c := pathcomplete.NewCompleter(s, pathcomplete.Exact())
	res, err := c.Complete(pathcomplete.MustParseExpr("premium_customer~price"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("premium_customer ~ price:")
	for _, comp := range res.Completions {
		fmt.Printf("  %-70s %s\n", comp.Path, comp.Label)
	}

	// Raise E to see the next-best readings too.
	opts := pathcomplete.Exact()
	opts.E = 2
	res, err = pathcomplete.NewCompleter(s, opts).Complete(pathcomplete.MustParseExpr("premium_customer~price"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("... and with E=2:")
	for _, comp := range res.Completions {
		fmt.Printf("  %-70s %s\n", comp.Path, comp.Label)
	}
}
