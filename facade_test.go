package pathcomplete_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pathcomplete"
)

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	s := pathcomplete.University()
	c := pathcomplete.NewCompleter(s, pathcomplete.Exact())
	res, err := c.Complete(pathcomplete.MustParseExpr("ta~name"))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	want := []string{
		"ta@>grad@>student@>person.name",
		"ta@>instructor@>teacher@>employee@>person.name",
	}
	if got := res.Strings(); !reflect.DeepEqual(got, want) {
		t.Errorf("completions = %v", got)
	}
}

// TestFacadeBuilderAndSDL round-trips a schema built through the
// facade.
func TestFacadeBuilderAndSDL(t *testing.T) {
	b := pathcomplete.NewSchemaBuilder("shop")
	b.Assoc("customer", "order", "places", "placed_by")
	b.HasPart("order", "line_item")
	b.Attr("line_item", "qty", "I")
	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := pathcomplete.WriteSDL(&buf, s); err != nil {
		t.Fatalf("WriteSDL: %v", err)
	}
	s2, err := pathcomplete.ParseSDLString(buf.String())
	if err != nil {
		t.Fatalf("ParseSDLString: %v", err)
	}
	if s2.NumRels() != s.NumRels() {
		t.Errorf("round trip changed rel count: %d vs %d", s2.NumRels(), s.NumRels())
	}
	res, err := pathcomplete.NewCompleter(s2, pathcomplete.Paper()).
		Complete(pathcomplete.MustParseExpr("customer~qty"))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if got := res.Strings(); !reflect.DeepEqual(got, []string{"customer.places$>line_item.qty"}) {
		t.Errorf("completions = %v", got)
	}
}

// TestFacadeQueryLoop runs the Figure 1 interpreter through the
// facade.
func TestFacadeQueryLoop(t *testing.T) {
	store := pathcomplete.UniversityStore()
	in := pathcomplete.NewInterp(store, pathcomplete.Exact(), pathcomplete.AcceptFirst)
	ans, err := in.Query("ta~name")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !reflect.DeepEqual(ans.Values, []any{"Yezdi"}) {
		t.Errorf("values = %v", ans.Values)
	}
	if len(pathcomplete.AcceptAll(ans.Candidates)) != len(ans.Candidates) {
		t.Error("AcceptAll should approve everything")
	}
}

// TestFacadeExplain covers the derivation writer.
func TestFacadeExplain(t *testing.T) {
	s := pathcomplete.Parts()
	res, err := pathcomplete.NewCompleter(s, pathcomplete.Exact()).
		Complete(pathcomplete.MustParseExpr("engine~chassis"))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	var sb strings.Builder
	if err := pathcomplete.Explain(&sb, res.Completions[0]); err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(sb.String(), ".SB") {
		t.Errorf("explain output:\n%s", sb.String())
	}
}

// TestFacadeFeedback covers the learner through the facade.
func TestFacadeFeedback(t *testing.T) {
	s := pathcomplete.University()
	l := pathcomplete.NewFeedbackLearner(s)
	c := pathcomplete.NewCompleter(s, pathcomplete.Exact())
	opts := pathcomplete.Exact()
	opts.E = 2
	wide, err := pathcomplete.NewCompleter(s, opts).Complete(pathcomplete.MustParseExpr("ta~course"))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	narrow, err := c.Complete(pathcomplete.MustParseExpr("ta~course"))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	good := make(map[string]bool)
	for _, comp := range narrow.Completions {
		good[comp.Path.String()] = true
	}
	for _, comp := range wide.Completions {
		if good[comp.Path.String()] {
			err = l.Observe([]*pathcomplete.Resolved{comp.Path}, nil)
		} else {
			err = l.Observe(nil, []*pathcomplete.Resolved{comp.Path})
		}
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if len(l.Report()) == 0 {
		t.Error("learner accumulated no evidence")
	}
}

// TestFacadeCupid covers the generator.
func TestFacadeCupid(t *testing.T) {
	cfg := pathcomplete.DefaultCupidConfig()
	cfg.Classes = 30
	cfg.RelPairs = 60
	cfg.Hubs = 1
	w, err := pathcomplete.GenerateCupid(cfg)
	if err != nil {
		t.Fatalf("GenerateCupid: %v", err)
	}
	if w.Schema.NumUserClasses() != 30 {
		t.Errorf("classes = %d", w.Schema.NumUserClasses())
	}
	if len(w.ExcludeHubs()) != 1 {
		t.Errorf("exclusions = %v", w.ExcludeHubs())
	}
}

// TestFacadePresets sanity-checks the three presets differ as
// documented.
func TestFacadePresets(t *testing.T) {
	p, sf, ex := pathcomplete.Paper(), pathcomplete.Safe(), pathcomplete.Exact()
	if p.SemLenSlack || !sf.SemLenSlack {
		t.Error("slack should be off in Paper and on in Safe")
	}
	if !ex.DisableBestU {
		t.Error("Exact should disable best[u] pruning")
	}
	if p.E != 1 || sf.E != 1 || ex.E != 1 {
		t.Error("presets should default to E=1")
	}
}
