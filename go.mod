module pathcomplete

go 1.22
