package main

import "testing"

func TestRunFormats(t *testing.T) {
	for _, schema := range []string{"university", "parts", "cupid"} {
		for _, format := range []string{"sdl", "dot", "summary"} {
			cfgClasses, cfgPairs := 92, 182
			if schema == "cupid" {
				cfgClasses, cfgPairs = 30, 60 // keep the test quick
			}
			if err := run(schema, format, 1, cfgClasses, cfgPairs, 2, 5); err != nil {
				t.Errorf("run(%s, %s): %v", schema, format, err)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "sdl", 1, 92, 182, 3, 8); err == nil {
		t.Error("unknown schema should error")
	}
	if err := run("university", "nope", 1, 92, 182, 3, 8); err == nil {
		t.Error("unknown format should error")
	}
	if err := run("cupid", "sdl", 1, 2, 2, 0, 0); err == nil {
		t.Error("impossible generator config (too few classes) should error")
	}
	if err := run("cupid", "sdl", 1, 20, 2, 0, 0); err == nil {
		t.Error("impossible generator config (RelPairs below the backbone) should error")
	}
}
