// Command schemagen emits schemas in SDL or Graphviz DOT form:
//
//	schemagen -schema cupid -seed 7 > cupid.sdl
//	schemagen -schema university -format dot | dot -Tpng > uni.png
//	schemagen -schema cupid -classes 200 -relpairs 400 -format summary
package main

import (
	"flag"
	"fmt"
	"os"

	"pathcomplete/internal/cupid"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/uni"
)

func main() {
	var (
		name     = flag.String("schema", "cupid", "schema: university, parts, or cupid")
		format   = flag.String("format", "sdl", "output format: sdl, dot, or summary")
		seed     = flag.Int64("seed", 1994, "generator seed (cupid only)")
		classes  = flag.Int("classes", 92, "user classes (cupid only)")
		relpairs = flag.Int("relpairs", 182, "relationship pairs (cupid only)")
		hubs     = flag.Int("hubs", 3, "hub classes (cupid only)")
		fanout   = flag.Int("fanout", 8, "hub fanout (cupid only)")
	)
	flag.Parse()
	if err := run(*name, *format, *seed, *classes, *relpairs, *hubs, *fanout); err != nil {
		fmt.Fprintln(os.Stderr, "schemagen:", err)
		os.Exit(1)
	}
}

func run(name, format string, seed int64, classes, relpairs, hubs, fanout int) error {
	var s *schema.Schema
	switch name {
	case "university":
		s = uni.New()
	case "parts":
		s = parts.New()
	case "cupid":
		w, err := cupid.Generate(cupid.Config{
			Seed: seed, Classes: classes, RelPairs: relpairs, Hubs: hubs, HubFanout: fanout,
		})
		if err != nil {
			return err
		}
		s = w.Schema
	default:
		return fmt.Errorf("unknown schema %q", name)
	}
	switch format {
	case "sdl":
		return sdl.Write(os.Stdout, s)
	case "dot":
		return s.WriteDOT(os.Stdout)
	case "summary":
		fmt.Printf("schema %s\n%s\n", s.Name(), s.ComputeStats())
		return nil
	}
	return fmt.Errorf("unknown format %q (want sdl, dot, or summary)", format)
}
