package main

// -follow: an interactive keystroke session against a running
// pathserve. Each stdin line is sent as one update frame on a
// /v1/sessions WebSocket, and the streamed answer — per-anchor
// candidate batches, the merged final with its reuse stats, rebind
// announcements when the server hot-reloads mid-session — is printed
// as it arrives. Unlike the one-shot remote mode, a session pins one
// schema snapshot and reuses the traversal frontier across refining
// inputs, so `ta~n` then `ta~na` costs one search plus a merge.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	neturl "net/url"
	"strings"

	"pathcomplete/internal/session"
	"pathcomplete/internal/ws"
)

// runFollow drives one interactive session until EOF or "quit".
func runFollow(rc remoteConfig, in io.Reader, out io.Writer) error {
	url := strings.TrimRight(rc.base, "/") + "/v1/sessions"
	if rc.schema != "" {
		url += "?schema=" + neturl.QueryEscape(rc.schema)
	}
	conn, err := ws.Dial(url)
	if err != nil {
		return fmt.Errorf("session dial: %w", err)
	}
	defer conn.Close(ws.CloseNormal, "")

	hello, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("session hello: %w", err)
	}
	if hello.Type == session.TypeError {
		return fmt.Errorf("session refused (%s): %s", hello.Code, hello.Message)
	}
	if hello.Type != session.TypeHello {
		return fmt.Errorf("session: first frame is %q, want hello", hello.Type)
	}
	fmt.Fprintf(out, "session %s: schema %s, generation %d. Type keystrokes (one state per line):\n",
		hello.Session, hello.Schema, hello.Generation)

	// The printer owns the read side: frames stream in while stdin
	// blocks, so a slow typist still sees batches arrive live.
	done := make(chan error, 1)
	go func() { done <- followPrint(conn, rc, out) }()

	seq := uint64(0)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		seq++
		data, err := json.Marshal(session.ClientFrame{Type: session.TypeUpdate, Seq: seq, Expr: line})
		if err != nil {
			return err
		}
		if err := conn.WriteMessage(ws.OpText, data); err != nil {
			return fmt.Errorf("session send: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	conn.Close(ws.CloseNormal, "")
	<-done // the printer exits on the close it just observed
	return nil
}

// readFrame reads and decodes one server frame.
func readFrame(conn *ws.Conn) (session.ServerFrame, error) {
	var f session.ServerFrame
	_, data, err := conn.ReadMessage()
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

// followPrint renders server frames until the connection ends.
func followPrint(conn *ws.Conn, rc remoteConfig, out io.Writer) error {
	for {
		f, err := readFrame(conn)
		if err != nil {
			return err // clean close included: the writer ignores it
		}
		switch f.Type {
		case session.TypeBatch:
			if rc.verbose {
				reused := ""
				if f.Reused {
					reused = " (reused)"
				}
				fmt.Fprintf(out, "  [%d] anchor %s: %d candidates%s\n",
					f.Seq, f.Anchor, len(f.Candidates), reused)
			}
		case session.TypeFinal:
			fmt.Fprintf(out, "%s\n", f.Expr)
			if len(f.Completions) == 0 {
				fmt.Fprintln(out, "  (no consistent completion)")
			}
			for _, c := range f.Completions {
				fmt.Fprintf(out, "  %-60s [%s, %d]\n", c.Path, c.Conn, c.SemLen)
			}
			if f.Aborted {
				fmt.Fprintf(out, "  (search stopped early: %s)\n", f.StopReason)
			}
			if rc.stats && f.Stats != nil {
				fmt.Fprintf(out, "  engine=%s calls=%d anchors=%d reused=%d cold=%d source=%d\n",
					f.Engine, f.Stats.Calls, f.Stats.Anchors, f.Stats.Reused, f.Stats.Cold, f.Stats.Source)
			}
		case session.TypeSkipped:
			if rc.verbose {
				fmt.Fprintf(out, "  [%d] superseded by a newer keystroke\n", f.Seq)
			}
		case session.TypeError:
			fmt.Fprintf(out, "  error (%s): %s\n", f.Code, f.Message)
		case session.TypeRebind:
			fmt.Fprintf(out, "  (schema reloaded: now %s generation %d; session state reset)\n",
				f.Schema, f.Generation)
		}
	}
}
