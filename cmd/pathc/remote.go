package main

// Remote mode: -server points pathc at a running pathserve and every
// completion goes through the versioned /v1 HTTP surface instead of
// the in-process engine. The client speaks the v1 envelope — data,
// error{code,message}, meta{schema,generation,engine,cacheHit,
// durationMs} — and -v surfaces the meta, so an operator can see at a
// glance whether an answer came from the materialized closure index
// or the search kernel, and which schema generation produced it.

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// remoteConfig carries the flags the remote mode uses.
type remoteConfig struct {
	base    string // server base URL, e.g. http://localhost:8080
	schema  string // ?schema= value ("" means the server default)
	e       int
	timeout time.Duration // sent as timeoutMs (0: server default)
	verbose bool          // print the response meta
	stats   bool
	batch   bool
	workers int  // unused remotely (the server bounds batch concurrency)
	trace   bool // force-sample the request; fetch and print its span trace
	retries int  // max retries after a 429/503 (0: fail immediately)
}

// apiEnvelope mirrors the server's v1 envelope on the wire.
type apiEnvelope struct {
	Data  json.RawMessage `json:"data"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Meta *struct {
		Schema     string  `json:"schema"`
		Generation uint64  `json:"generation"`
		Engine     string  `json:"engine"`
		CacheHit   bool    `json:"cacheHit"`
		TraceID    string  `json:"traceId"`
		DurationMs float64 `json:"durationMs"`
	} `json:"meta"`
}

// remoteCompletion mirrors the server's CompletionJSON.
type remoteCompletion struct {
	Path   string `json:"path"`
	Conn   string `json:"conn"`
	SemLen int    `json:"semlen"`
}

// remoteResult mirrors the fields of the server's CompleteResponse the
// client renders.
type remoteResult struct {
	Expr        string             `json:"expr"`
	Completions []remoteCompletion `json:"completions"`
	Truncated   bool               `json:"truncated"`
	Aborted     bool               `json:"aborted"`
	StopReason  string             `json:"stopReason"`
	Cached      bool               `json:"cached"`
	Engine      string             `json:"engine"`
	Stats       *struct {
		Calls        int `json:"calls"`
		Offers       int `json:"offers"`
		PrunedBestT  int `json:"prunedBestT"`
		PrunedBestU  int `json:"prunedBestU"`
		CautionSaves int `json:"cautionSaves"`
	} `json:"stats"`
	Error string `json:"error"` // batch items only
}

// endpoint joins the base URL, a /v1 path, and the schema parameter.
func (rc remoteConfig) endpoint(path string) (string, error) {
	u, err := url.Parse(rc.base)
	if err != nil {
		return "", fmt.Errorf("-server: %w", err)
	}
	if u.Scheme == "" {
		u, err = url.Parse("http://" + rc.base)
		if err != nil {
			return "", fmt.Errorf("-server: %w", err)
		}
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if rc.schema != "" {
		q := u.Query()
		q.Set("schema", rc.schema)
		u.RawQuery = q.Encode()
	}
	return u.String(), nil
}

// post sends one v1 request and decodes the envelope, turning an
// error envelope into a Go error tagged with its machine code. With
// -trace, the request carries a W3C traceparent whose sampled flag is
// set, guaranteeing the server retains the request's span trace.
func (rc remoteConfig) post(path string, body any) (*apiEnvelope, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req := func(ep string) (*http.Request, error) {
		r, err := http.NewRequest(http.MethodPost, ep, bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		r.Header.Set("Content-Type", "application/json")
		if rc.trace {
			r.Header.Set("traceparent", newTraceparent())
		}
		return r, nil
	}
	return rc.call(path, req)
}

// get sends one v1 GET request and decodes the envelope.
func (rc remoteConfig) get(path string) (*apiEnvelope, error) {
	return rc.call(path, func(ep string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ep, nil)
	})
}

// call resolves the endpoint, issues the request, and decodes the v1
// envelope shared by every verb. A 429 (admission shed) or 503 (queue
// timeout) answer is retried up to rc.retries times — both mean "the
// server is alive but momentarily saturated", the one failure mode a
// client-side pause genuinely fixes — waiting out the server's
// Retry-After hint (or an exponential fallback) with jitter, bounded
// by retryMaxDelay. Every other status, and any transport error, is
// surfaced immediately: retrying a 400 or a refused connection only
// delays the real answer. build runs once per attempt, so each retry
// carries a fresh body reader.
func (rc remoteConfig) call(path string, build func(string) (*http.Request, error)) (*apiEnvelope, error) {
	ep, err := rc.endpoint(path)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := build(ep)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if attempt < rc.retries && retryableStatus(resp.StatusCode) {
			after := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(retryDelay(after, attempt))
			continue
		}
		defer resp.Body.Close()
		var env apiEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("server %s: HTTP %d: %w", path, resp.StatusCode, err)
		}
		if env.Error != nil {
			return nil, fmt.Errorf("server %s [%s]: %s", path, env.Error.Code, env.Error.Message)
		}
		return &env, nil
	}
}

// retryableStatus reports whether a response status signals transient
// server overload worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Backoff bounds: the exponential fallback starts at retryBaseDelay
// and every wait — server-hinted or not — is capped at retryMaxDelay,
// so a confused server cannot park the client for minutes.
const (
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 5 * time.Second
)

// retryDelay computes the wait before retry attempt (0-based): the
// server's Retry-After hint in delta-seconds form when present and
// parsable, otherwise retryBaseDelay doubled per attempt; capped at
// retryMaxDelay, then jittered ±25% so a herd of clients shed at the
// same instant does not return in lockstep.
func retryDelay(retryAfter string, attempt int) time.Duration {
	d := retryBaseDelay << min(attempt, 10)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > retryMaxDelay {
		d = retryMaxDelay
	}
	if d <= 0 {
		return 0
	}
	quarter := int64(d) / 4
	return d - time.Duration(quarter/2) + time.Duration(mrand.Int63n(quarter+1))
}

// newTraceparent mints a W3C traceparent with the sampled flag set:
// "00-<32 hex trace-id>-<16 hex span-id>-01". A rand failure falls
// back to a fixed ID — the request still completes, the trace is just
// not uniquely addressable.
func newTraceparent() string {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00-00000000000000000000000000000001-0000000000000001-01"
	}
	return "00-" + hex.EncodeToString(b[:16]) + "-" + hex.EncodeToString(b[16:]) + "-01"
}

// metaLine renders the -v meta line for one response.
func metaLine(env *apiEnvelope) string {
	m := env.Meta
	if m == nil {
		return "  meta: (none)"
	}
	line := fmt.Sprintf("  meta: engine=%s schema=%s generation=%d cacheHit=%v durationMs=%.2f",
		m.Engine, m.Schema, m.Generation, m.CacheHit, m.DurationMs)
	if m.TraceID != "" {
		line += " traceId=" + m.TraceID
	}
	return line
}

// remoteSpan and remoteTrace mirror the server's SpanData/TraceData.
type remoteSpan struct {
	SpanID     string         `json:"spanId"`
	ParentID   string         `json:"parentId"`
	Name       string         `json:"name"`
	OffsetMs   float64        `json:"offsetMs"`
	DurationMs float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs"`
	Error      string         `json:"error"`
}

type remoteTrace struct {
	TraceID    string       `json:"traceId"`
	Name       string       `json:"name"`
	DurationMs float64      `json:"durationMs"`
	Reason     string       `json:"reason"`
	Spans      []remoteSpan `json:"spans"`
}

// printRemoteTrace fetches the span trace the server retained for the
// request identified by traceID and renders it as an indented tree —
// where the request's time went, stage by stage. The root span is
// finalized just after the response body is written, so the first
// fetch can race it; retry briefly before giving up.
func printRemoteTrace(w io.Writer, rc remoteConfig, traceID string) {
	if traceID == "" {
		fmt.Fprintln(w, "  trace: response carried no trace ID (server predates tracing?)")
		return
	}
	var env *apiEnvelope
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		env, err = rc.get("/v1/traces/" + traceID)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		fmt.Fprintf(w, "  trace %s: %v\n", traceID, err)
		return
	}
	var tr remoteTrace
	if err := json.Unmarshal(env.Data, &tr); err != nil {
		fmt.Fprintf(w, "  trace %s: decoding: %v\n", traceID, err)
		return
	}
	fmt.Fprintf(w, "  trace %s (%s, %.2fms, %d spans)\n",
		tr.TraceID, tr.Reason, tr.DurationMs, len(tr.Spans))
	children := make(map[string][]remoteSpan, len(tr.Spans))
	var roots []remoteSpan
	byID := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.SpanID] = true
	}
	for _, s := range tr.Spans {
		if s.ParentID == "" || !byID[s.ParentID] {
			roots = append(roots, s) // a root, or an orphan of a dropped span
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	for _, s := range roots {
		printSpan(w, s, children, 1)
	}
}

// printSpan renders one span line and recurses into its children in
// start order.
func printSpan(w io.Writer, s remoteSpan, children map[string][]remoteSpan, depth int) {
	indent := strings.Repeat("  ", depth+1)
	name := s.Name
	if s.Error != "" {
		name += " !" + s.Error
	}
	fmt.Fprintf(w, "%s%-*s %8.2fms  +%.2fms%s\n",
		indent, 34-2*depth, name, s.DurationMs, s.OffsetMs, attrLine(s.Attrs))
	kids := children[s.SpanID]
	sort.Slice(kids, func(i, j int) bool { return kids[i].OffsetMs < kids[j].OffsetMs })
	for _, c := range kids {
		printSpan(w, c, children, depth+1)
	}
}

// attrLine renders a span's attributes as sorted key=value pairs.
func attrLine(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("  {")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%v", k, attrs[k])
	}
	sb.WriteString("}")
	return sb.String()
}

// printRemote renders one remote completion result in the same shape
// as the local mode's output.
func printRemote(w io.Writer, rc remoteConfig, res remoteResult) {
	if res.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", res.Error)
		return
	}
	if len(res.Completions) == 0 {
		if res.Aborted {
			fmt.Fprintf(w, "  (search stopped early: %s, before any completion was found)\n", res.StopReason)
		} else {
			fmt.Fprintln(w, "  (no consistent completion)")
		}
	}
	for _, c := range res.Completions {
		fmt.Fprintf(w, "  %-60s [%s, %d]\n", c.Path, c.Conn, c.SemLen)
	}
	if res.Truncated {
		fmt.Fprintln(w, "  (answer set truncated)")
	}
	if res.Aborted && len(res.Completions) > 0 {
		fmt.Fprintf(w, "  (search stopped early: %s; the completions above are the valid best-so-far subset)\n",
			res.StopReason)
	}
	if rc.stats && res.Stats != nil {
		fmt.Fprintf(w, "  calls=%d offers=%d prunedT=%d prunedU=%d cautionSaves=%d\n",
			res.Stats.Calls, res.Stats.Offers, res.Stats.PrunedBestT,
			res.Stats.PrunedBestU, res.Stats.CautionSaves)
	}
}

// completeBody builds the /v1/complete request body for one
// expression.
func (rc remoteConfig) completeBody(expr string) map[string]any {
	body := map[string]any{"expr": expr}
	if rc.e > 1 {
		body["e"] = rc.e
	}
	if rc.timeout > 0 {
		body["timeoutMs"] = int(rc.timeout / time.Millisecond)
	}
	return body
}

// runRemote is the -server entry point: complete the given
// expressions (or stdin lines) over HTTP.
func runRemote(rc remoteConfig, args []string, in io.Reader, out io.Writer) error {
	if rc.batch {
		return runRemoteBatch(rc, in, out)
	}
	exprs := args
	if len(exprs) == 0 {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			exprs = append(exprs, line)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	for _, expr := range exprs {
		fmt.Fprintf(out, "%s\n", expr)
		env, err := rc.post("/v1/complete", rc.completeBody(expr))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			continue
		}
		var res remoteResult
		if err := json.Unmarshal(env.Data, &res); err != nil {
			fmt.Fprintf(out, "  error: decoding response: %v\n", err)
			continue
		}
		printRemote(out, rc, res)
		if rc.verbose {
			fmt.Fprintln(out, metaLine(env))
		}
		if rc.trace && env.Meta != nil {
			printRemoteTrace(out, rc, env.Meta.TraceID)
		}
	}
	return nil
}

// runRemoteBatch reads one expression per line and answers the whole
// set through one /v1/completeBatch call: every element sees the same
// schema generation even if a reload lands mid-batch.
func runRemoteBatch(rc remoteConfig, in io.Reader, out io.Writer) error {
	var queries []map[string]any
	var lines []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
		queries = append(queries, map[string]any{"expr": line})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return nil
	}
	body := map[string]any{"queries": queries}
	if rc.timeout > 0 {
		body["timeoutMs"] = int(rc.timeout / time.Millisecond)
	}
	env, err := rc.post("/v1/completeBatch", body)
	if err != nil {
		return err
	}
	var batch struct {
		Schema     string         `json:"schema"`
		Generation uint64         `json:"generation"`
		Results    []remoteResult `json:"results"`
	}
	if err := json.Unmarshal(env.Data, &batch); err != nil {
		return fmt.Errorf("decoding batch response: %w", err)
	}
	for i, line := range lines {
		fmt.Fprintf(out, "%s\n", line)
		if i < len(batch.Results) {
			printRemote(out, rc, batch.Results[i])
		}
	}
	if rc.verbose {
		fmt.Fprintln(out, metaLine(env))
	}
	if rc.trace && env.Meta != nil {
		printRemoteTrace(out, rc, env.Meta.TraceID)
	}
	return nil
}
