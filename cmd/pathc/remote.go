package main

// Remote mode: -server points pathc at a running pathserve and every
// completion goes through the versioned /v1 HTTP surface instead of
// the in-process engine. The client speaks the v1 envelope — data,
// error{code,message}, meta{schema,generation,engine,cacheHit,
// durationMs} — and -v surfaces the meta, so an operator can see at a
// glance whether an answer came from the materialized closure index
// or the search kernel, and which schema generation produced it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// remoteConfig carries the flags the remote mode uses.
type remoteConfig struct {
	base    string // server base URL, e.g. http://localhost:8080
	schema  string // ?schema= value ("" means the server default)
	e       int
	timeout time.Duration // sent as timeoutMs (0: server default)
	verbose bool          // print the response meta
	stats   bool
	batch   bool
	workers int // unused remotely (the server bounds batch concurrency)
}

// apiEnvelope mirrors the server's v1 envelope on the wire.
type apiEnvelope struct {
	Data  json.RawMessage `json:"data"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Meta *struct {
		Schema     string  `json:"schema"`
		Generation uint64  `json:"generation"`
		Engine     string  `json:"engine"`
		CacheHit   bool    `json:"cacheHit"`
		DurationMs float64 `json:"durationMs"`
	} `json:"meta"`
}

// remoteCompletion mirrors the server's CompletionJSON.
type remoteCompletion struct {
	Path   string `json:"path"`
	Conn   string `json:"conn"`
	SemLen int    `json:"semlen"`
}

// remoteResult mirrors the fields of the server's CompleteResponse the
// client renders.
type remoteResult struct {
	Expr        string             `json:"expr"`
	Completions []remoteCompletion `json:"completions"`
	Truncated   bool               `json:"truncated"`
	Aborted     bool               `json:"aborted"`
	StopReason  string             `json:"stopReason"`
	Cached      bool               `json:"cached"`
	Engine      string             `json:"engine"`
	Stats       *struct {
		Calls        int `json:"calls"`
		Offers       int `json:"offers"`
		PrunedBestT  int `json:"prunedBestT"`
		PrunedBestU  int `json:"prunedBestU"`
		CautionSaves int `json:"cautionSaves"`
	} `json:"stats"`
	Error string `json:"error"` // batch items only
}

// endpoint joins the base URL, a /v1 path, and the schema parameter.
func (rc remoteConfig) endpoint(path string) (string, error) {
	u, err := url.Parse(rc.base)
	if err != nil {
		return "", fmt.Errorf("-server: %w", err)
	}
	if u.Scheme == "" {
		u, err = url.Parse("http://" + rc.base)
		if err != nil {
			return "", fmt.Errorf("-server: %w", err)
		}
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if rc.schema != "" {
		q := u.Query()
		q.Set("schema", rc.schema)
		u.RawQuery = q.Encode()
	}
	return u.String(), nil
}

// post sends one v1 request and decodes the envelope, turning an
// error envelope into a Go error tagged with its machine code.
func (rc remoteConfig) post(path string, body any) (*apiEnvelope, error) {
	ep, err := rc.endpoint(path)
	if err != nil {
		return nil, err
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(ep, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var env apiEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("server %s: HTTP %d: %w", path, resp.StatusCode, err)
	}
	if env.Error != nil {
		return nil, fmt.Errorf("server %s [%s]: %s", path, env.Error.Code, env.Error.Message)
	}
	return &env, nil
}

// metaLine renders the -v meta line for one response.
func metaLine(env *apiEnvelope) string {
	m := env.Meta
	if m == nil {
		return "  meta: (none)"
	}
	return fmt.Sprintf("  meta: engine=%s schema=%s generation=%d cacheHit=%v durationMs=%.2f",
		m.Engine, m.Schema, m.Generation, m.CacheHit, m.DurationMs)
}

// printRemote renders one remote completion result in the same shape
// as the local mode's output.
func printRemote(w io.Writer, rc remoteConfig, res remoteResult) {
	if res.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", res.Error)
		return
	}
	if len(res.Completions) == 0 {
		if res.Aborted {
			fmt.Fprintf(w, "  (search stopped early: %s, before any completion was found)\n", res.StopReason)
		} else {
			fmt.Fprintln(w, "  (no consistent completion)")
		}
	}
	for _, c := range res.Completions {
		fmt.Fprintf(w, "  %-60s [%s, %d]\n", c.Path, c.Conn, c.SemLen)
	}
	if res.Truncated {
		fmt.Fprintln(w, "  (answer set truncated)")
	}
	if res.Aborted && len(res.Completions) > 0 {
		fmt.Fprintf(w, "  (search stopped early: %s; the completions above are the valid best-so-far subset)\n",
			res.StopReason)
	}
	if rc.stats && res.Stats != nil {
		fmt.Fprintf(w, "  calls=%d offers=%d prunedT=%d prunedU=%d cautionSaves=%d\n",
			res.Stats.Calls, res.Stats.Offers, res.Stats.PrunedBestT,
			res.Stats.PrunedBestU, res.Stats.CautionSaves)
	}
}

// completeBody builds the /v1/complete request body for one
// expression.
func (rc remoteConfig) completeBody(expr string) map[string]any {
	body := map[string]any{"expr": expr}
	if rc.e > 1 {
		body["e"] = rc.e
	}
	if rc.timeout > 0 {
		body["timeoutMs"] = int(rc.timeout / time.Millisecond)
	}
	return body
}

// runRemote is the -server entry point: complete the given
// expressions (or stdin lines) over HTTP.
func runRemote(rc remoteConfig, args []string, in io.Reader, out io.Writer) error {
	if rc.batch {
		return runRemoteBatch(rc, in, out)
	}
	exprs := args
	if len(exprs) == 0 {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			exprs = append(exprs, line)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	for _, expr := range exprs {
		fmt.Fprintf(out, "%s\n", expr)
		env, err := rc.post("/v1/complete", rc.completeBody(expr))
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
			continue
		}
		var res remoteResult
		if err := json.Unmarshal(env.Data, &res); err != nil {
			fmt.Fprintf(out, "  error: decoding response: %v\n", err)
			continue
		}
		printRemote(out, rc, res)
		if rc.verbose {
			fmt.Fprintln(out, metaLine(env))
		}
	}
	return nil
}

// runRemoteBatch reads one expression per line and answers the whole
// set through one /v1/completeBatch call: every element sees the same
// schema generation even if a reload lands mid-batch.
func runRemoteBatch(rc remoteConfig, in io.Reader, out io.Writer) error {
	var queries []map[string]any
	var lines []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
		queries = append(queries, map[string]any{"expr": line})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return nil
	}
	body := map[string]any{"queries": queries}
	if rc.timeout > 0 {
		body["timeoutMs"] = int(rc.timeout / time.Millisecond)
	}
	env, err := rc.post("/v1/completeBatch", body)
	if err != nil {
		return err
	}
	var batch struct {
		Schema     string         `json:"schema"`
		Generation uint64         `json:"generation"`
		Results    []remoteResult `json:"results"`
	}
	if err := json.Unmarshal(env.Data, &batch); err != nil {
		return fmt.Errorf("decoding batch response: %w", err)
	}
	for i, line := range lines {
		fmt.Fprintf(out, "%s\n", line)
		if i < len(batch.Results) {
			printRemote(out, rc, batch.Results[i])
		}
	}
	if rc.verbose {
		fmt.Fprintln(out, metaLine(env))
	}
	return nil
}
