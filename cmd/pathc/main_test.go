package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/pathexpr"
	"pathcomplete/internal/uni"
)

func TestRunOneShot(t *testing.T) {
	cfg := config{schemaName: "university", engine: "exact", e: 1, eval: true, stats: true, explain: true}
	if err := run(cfg, []string{"ta~name", "department~course"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExclude(t *testing.T) {
	cfg := config{schemaName: "university", engine: "paper", e: 1, exclude: "employee"}
	if err := run(cfg, []string{"ta~name"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	cfg.exclude = "nosuchclass"
	if err := run(cfg, []string{"ta~name"}); err == nil || !strings.Contains(err.Error(), "unknown excluded class") {
		t.Errorf("err = %v", err)
	}
}

func TestRunTrace(t *testing.T) {
	cfg := config{schemaName: "university", engine: "paper", e: 1, trace: true}
	if err := run(cfg, []string{"ta~name"}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	// A tight limit still completes and reports the overflow.
	cfg.traceLimit = 3
	if err := run(cfg, []string{"ta~name"}); err != nil {
		t.Fatalf("run -trace -trace-limit 3: %v", err)
	}
}

func TestPrintTrace(t *testing.T) {
	s := uni.New()
	rec := core.NewTraceRecorder(s, 4)
	opts := core.Paper()
	opts.Tracer = rec
	if _, err := core.New(s, opts).Complete(pathexpr.MustParse("ta~name")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printTrace(&sb, rec)
	out := sb.String()
	if !strings.Contains(out, "trace: 4 events") || !strings.Contains(out, "dropped beyond the limit") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "enter") || !strings.Contains(out, "ta seg=0 depth=0") {
		t.Errorf("missing enter line:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{schemaName: "nope", engine: "paper", e: 1}, nil); err == nil {
		t.Error("unknown schema should error")
	}
	if err := run(config{schemaName: "university", engine: "nope", e: 1}, nil); err == nil {
		t.Error("unknown engine should error")
	}
	if err := run(config{schemaName: "university", engine: "paper", e: 1, timeout: -time.Second}, nil); err == nil ||
		!strings.Contains(err.Error(), "-timeout must be >= 0") {
		t.Errorf("negative timeout: err = %v", err)
	}
}

// TestRunTimeout: a generous -timeout completes normally; the flag
// threads through to Options.Deadline without changing answers.
func TestRunTimeout(t *testing.T) {
	cfg := config{schemaName: "university", engine: "paper", e: 1, timeout: time.Minute}
	if err := run(cfg, []string{"ta~name"}); err != nil {
		t.Fatalf("run -timeout 1m: %v", err)
	}
}

func TestRunSDLAndStore(t *testing.T) {
	dir := t.TempDir()
	sdlPath := filepath.Join(dir, "s.sdl")
	src := "schema tiny\nisa a b\nattr b v I\n"
	if err := os.WriteFile(sdlPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{sdlPath: sdlPath, engine: "safe", e: 2}
	if err := run(cfg, []string{"a~v"}); err != nil {
		t.Fatalf("run with SDL: %v", err)
	}
	// Bad paths error cleanly.
	cfg.sdlPath = filepath.Join(dir, "missing.sdl")
	if err := run(cfg, []string{"a~v"}); err == nil {
		t.Error("missing SDL file should error")
	}
	cfg.sdlPath = sdlPath
	cfg.storePath = filepath.Join(dir, "missing.json")
	if err := run(cfg, []string{"a~v"}); err == nil {
		t.Error("missing store file should error")
	}
}

func TestRunWhy(t *testing.T) {
	if err := runWhy("university", "", []string{
		"ta@>grad@>student@>person.name",
		"ta@>grad@>student.take.name",
	}); err != nil {
		t.Fatalf("runWhy: %v", err)
	}
	if err := runWhy("university", "", []string{"only-one"}); err == nil {
		t.Error("one argument should error")
	}
	if err := runWhy("university", "", []string{"ta..x", "ta~y"}); err == nil {
		t.Error("unparsable expression should error")
	}
	if err := runWhy("university", "", []string{"ta@>grad", "ta~name"}); err == nil {
		t.Error("incomplete expression should error")
	}
}

func TestPresetValues(t *testing.T) {
	for _, name := range []string{"paper", "safe", "exact"} {
		if _, err := preset(name); err != nil {
			t.Errorf("preset(%s): %v", name, err)
		}
	}
	if _, err := preset("x"); err == nil {
		t.Error("unknown preset should error")
	}
}
