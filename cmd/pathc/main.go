// Command pathc completes incomplete path expressions against a
// schema:
//
//	pathc -schema university 'ta~name'
//	pathc -schema parts 'motor~shaft'
//	pathc -sdl my_schema.sdl 'order~total'
//	pathc -schema university            # interactive: one expression per line
//	pathc -server http://localhost:8080 -v 'ta~name'   # remote via the /v1 API
//	pathc -server http://localhost:8080 -follow -stats # interactive keystroke session
//
// Flags select the engine preset (-engine paper|safe|exact), the AGG*
// parameter (-e), excluded classes (-exclude a,b,c), and whether to
// evaluate the completions against the built-in sample data (-eval,
// university schema only). With -server, completion runs against a
// live pathserve through the versioned /v1 surface, and -v prints the
// response meta — which engine answered (the materialized closure
// index or the search kernel) and at which schema generation.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/fox"
	"pathcomplete/internal/objstore"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/pathexpr"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/uni"
)

func main() {
	var (
		schemaName = flag.String("schema", "university", "built-in schema: university, parts, or cupid")
		sdlPath    = flag.String("sdl", "", "load the schema from an SDL file instead")
		engine     = flag.String("engine", "paper", "engine preset: paper, safe, or exact")
		e          = flag.Int("e", 1, "AGG* parameter: keep the E lowest semantic lengths")
		exclude    = flag.String("exclude", "", "comma-separated classes to exclude (domain knowledge)")
		eval       = flag.Bool("eval", false, "evaluate completions against sample data (university only)")
		stats      = flag.Bool("stats", false, "print traversal statistics")
		explain    = flag.Bool("explain", false, "print the label derivation of each completion")
		specific   = flag.Bool("specific", false, "prefer more specific classes among label ties")
		why        = flag.Bool("why", false, "compare exactly two complete expressions instead of completing")
		storePath  = flag.String("store", "", "load object data from a snapshot (requires -sdl; enables -eval)")
		dot        = flag.Bool("dot", false, "emit the schema in DOT form with the completions' edges highlighted")
		trace      = flag.Bool("trace", false, "print the traversal event log of each search; with -server, force-sample the request and pretty-print its server-side span trace")
		traceLimit = flag.Int("trace-limit", 0, "cap the trace at N events (0: default cap, negative: unlimited)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per search (0: none); an expired search prints its valid best-so-far completions")
		parallel   = flag.Int("parallel", 0, "fan root branches across N workers per search (0 or 1: sequential)")
		batch      = flag.Bool("batch", false, "batch mode: read one expression per line from stdin, complete them concurrently, print results in input order")
		workers    = flag.Int("workers", 4, "batch-mode concurrency (searches in flight at once)")
		serverURL  = flag.String("server", "", "complete against a running pathserve at this base URL via the /v1 API instead of the in-process engine (e.g. http://localhost:8080)")
		verbose    = flag.Bool("v", false, "with -server: print the response meta (engine, schema generation, cacheHit, durationMs)")
		retries    = flag.Int("retries", 0, "with -server: retry a request answered 429 or 503 up to N times, honoring the Retry-After header with bounded jittered backoff (0: fail immediately, today's behavior)")
		follow     = flag.Bool("follow", false, "with -server: open an interactive keystroke session (/v1/sessions WebSocket) — each stdin line is one typing state, answers stream and refine as you narrow the expression")
	)
	flag.Parse()
	if *follow && *serverURL == "" {
		fmt.Fprintln(os.Stderr, "pathc: -follow requires -server (sessions are a pathserve surface)")
		os.Exit(2)
	}
	if *serverURL != "" {
		switch {
		case *eval, *dot, *explain, *why:
			fmt.Fprintln(os.Stderr, "pathc: -eval, -dot, -explain, and -why are local-engine features; drop them to use -server")
			os.Exit(2)
		case *sdlPath != "" || *storePath != "":
			fmt.Fprintln(os.Stderr, "pathc: -sdl and -store are local-engine flags; with -server the schema is picked with -schema <served-name>")
			os.Exit(2)
		}
		// -schema is sent as ?schema= only when explicitly set: its
		// local default ("university") must not override the server's
		// default schema.
		schemaSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "schema" {
				schemaSet = true
			}
		})
		if *retries < 0 {
			fmt.Fprintln(os.Stderr, "pathc: -retries must be >= 0")
			os.Exit(2)
		}
		rc := remoteConfig{
			base: *serverURL, e: *e, timeout: *timeout, verbose: *verbose,
			stats: *stats, batch: *batch, workers: *workers, trace: *trace,
			retries: *retries,
		}
		if schemaSet {
			rc.schema = *schemaName
		}
		if *follow {
			if *batch || *trace {
				fmt.Fprintln(os.Stderr, "pathc: -follow and -batch/-trace are mutually exclusive")
				os.Exit(2)
			}
			if err := runFollow(rc, os.Stdin, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pathc:", err)
				os.Exit(1)
			}
			return
		}
		if err := runRemote(rc, flag.Args(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pathc:", err)
			os.Exit(1)
		}
		return
	}
	if *why {
		if err := runWhy(*schemaName, *sdlPath, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "pathc:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(config{
		schemaName: *schemaName, sdlPath: *sdlPath, engine: *engine, e: *e,
		exclude: *exclude, eval: *eval, stats: *stats, explain: *explain,
		specific: *specific, storePath: *storePath, dot: *dot,
		trace: *trace, traceLimit: *traceLimit, timeout: *timeout,
		parallel: *parallel, batch: *batch, workers: *workers,
	}, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pathc:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags.
type config struct {
	schemaName, sdlPath, engine, exclude, storePath string
	e, traceLimit, parallel, workers                int
	eval, stats, explain, specific, dot, trace      bool
	batch                                           bool
	timeout                                         time.Duration
}

// runWhy handles -why: explain the AGG comparison of two complete
// expressions.
func runWhy(schemaName, sdlPath string, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("-why takes exactly two complete path expressions")
	}
	s, _, err := loadSchema(schemaName, sdlPath)
	if err != nil {
		return err
	}
	a, err := pathexpr.Parse(args[0])
	if err != nil {
		return err
	}
	b, err := pathexpr.Parse(args[1])
	if err != nil {
		return err
	}
	out, err := core.Why(s, a, b)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func run(cfg config, args []string) error {
	s, store, err := loadSchema(cfg.schemaName, cfg.sdlPath)
	if err != nil {
		return err
	}
	if cfg.storePath != "" {
		f, err := os.Open(cfg.storePath)
		if err != nil {
			return err
		}
		store, err = objstore.Load(s, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	opts, err := preset(cfg.engine)
	if err != nil {
		return err
	}
	opts.E = cfg.e
	opts.PreferSpecific = cfg.specific
	if cfg.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", cfg.timeout)
	}
	opts.Deadline = cfg.timeout
	if cfg.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", cfg.parallel)
	}
	opts.Parallel = cfg.parallel
	if cfg.exclude != "" {
		opts.Exclude = make(map[schema.ClassID]bool)
		for _, name := range strings.Split(cfg.exclude, ",") {
			c, ok := s.ClassByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown excluded class %q", name)
			}
			opts.Exclude[c.ID] = true
		}
	}
	eval, stats := cfg.eval, cfg.stats
	cmp := core.New(s, opts)

	runOne := func(src string) {
		expr, err := pathexpr.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
			return
		}
		comp := cmp
		var rec *core.TraceRecorder
		if cfg.trace {
			// A tracer is per-query state: give each traced search its
			// own recorder and completer copy.
			rec = core.NewTraceRecorder(s, cfg.traceLimit)
			topts := opts
			topts.Tracer = rec
			comp = core.New(s, topts)
		}
		res, err := comp.Complete(expr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
			return
		}
		if rec != nil {
			printTrace(os.Stdout, rec)
		}
		if len(res.Completions) == 0 {
			if res.Aborted {
				fmt.Printf("  (search stopped early: %s, before any completion was found)\n", res.StopReason)
			} else {
				fmt.Println("  (no consistent completion)")
			}
			return
		}
		for _, c := range res.Completions {
			fmt.Printf("  %-60s %s\n", c.Path, c.Label)
			if cfg.explain {
				if err := core.Explain(os.Stdout, c); err != nil {
					fmt.Fprintln(os.Stderr, "  explain error:", err)
				}
			}
		}
		if res.Truncated {
			fmt.Println("  (answer set truncated)")
		}
		if res.Aborted {
			fmt.Printf("  (search stopped early: %s; the completions above are the valid best-so-far subset)\n",
				res.StopReason)
		}
		if cfg.dot {
			hl := make(map[schema.RelID]bool)
			for _, c := range res.Completions {
				for _, rid := range c.Path.Rels {
					hl[rid] = true
				}
			}
			if err := s.WriteDOTHighlighted(os.Stdout, hl); err != nil {
				fmt.Fprintln(os.Stderr, "  dot error:", err)
			}
		}
		if stats {
			fmt.Printf("  calls=%d offers=%d prunedT=%d prunedU=%d cautionSaves=%d\n",
				res.Stats.Calls, res.Stats.Offers, res.Stats.PrunedBestT,
				res.Stats.PrunedBestU, res.Stats.CautionSaves)
		}
		if eval && store != nil {
			in := fox.New(store, opts, fox.AcceptAll)
			ans, err := in.Query(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "  eval error:", err)
				return
			}
			fmt.Printf("  answer objects: %v\n", ans.Values)
		}
	}

	if cfg.batch {
		if cfg.trace {
			return fmt.Errorf("-batch and -trace are mutually exclusive (a trace is per-query state)")
		}
		return runBatch(cmp, cfg, os.Stdin, os.Stdout)
	}
	if len(args) > 0 {
		for _, src := range args {
			fmt.Printf("%s\n", src)
			runOne(src)
		}
		return nil
	}
	fmt.Printf("schema %s: %d classes, %d relationships. Enter path expressions (one per line):\n",
		s.Name(), s.NumUserClasses(), s.NumRels())
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "quit" || line == "exit" {
			if line != "" {
				break
			}
			continue
		}
		runOne(line)
	}
	return sc.Err()
}

// runBatch reads one incomplete expression per line from r, completes
// them all concurrently through CompleteBatchContext, and prints the
// answers in input order. Parse errors and search errors are reported
// inline on the offending line without aborting the batch.
func runBatch(cmp *core.Completer, cfg config, r io.Reader, w io.Writer) error {
	var (
		lines []string
		exprs []pathexpr.Expr
		perrs []error
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
		e, err := pathexpr.Parse(line)
		perrs = append(perrs, err)
		exprs = append(exprs, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Complete only the parseable lines, then splice the answers back
	// into input order.
	var valid []pathexpr.Expr
	idx := make([]int, 0, len(exprs))
	for i, e := range exprs {
		if perrs[i] == nil {
			valid = append(valid, e)
			idx = append(idx, i)
		}
	}
	results := make([]*core.Result, len(exprs))
	errs := make([]error, len(exprs))
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	res, rerrs := cmp.CompleteBatchContext(ctx, valid, cfg.workers)
	for j, i := range idx {
		results[i], errs[i] = res[j], rerrs[j]
	}
	for i, line := range lines {
		fmt.Fprintf(w, "%s\n", line)
		switch {
		case perrs[i] != nil:
			fmt.Fprintf(w, "  error: %v\n", perrs[i])
		case errs[i] != nil:
			fmt.Fprintf(w, "  error: %v\n", errs[i])
		case len(results[i].Completions) == 0:
			fmt.Fprintln(w, "  (no consistent completion)")
		default:
			for _, c := range results[i].Completions {
				fmt.Fprintf(w, "  %-60s %s\n", c.Path, c.Label)
			}
			if results[i].Aborted {
				fmt.Fprintf(w, "  (search stopped early: %s)\n", results[i].StopReason)
			}
		}
		if cfg.stats && results[i] != nil {
			st := results[i].Stats
			fmt.Fprintf(w, "  calls=%d offers=%d prunedT=%d prunedU=%d cautionSaves=%d\n",
				st.Calls, st.Offers, st.PrunedBestT, st.PrunedBestU, st.CautionSaves)
		}
	}
	return nil
}

func loadSchema(name, sdlPath string) (*schema.Schema, *objstore.Store, error) {
	if sdlPath != "" {
		f, err := os.Open(sdlPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		s, err := sdl.Parse(f)
		return s, nil, err
	}
	switch name {
	case "university":
		st := uni.SampleStore()
		return st.Schema(), st, nil
	case "parts":
		return parts.New(), nil, nil
	case "cupid":
		w, err := cupid.Generate(cupid.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		return w.Schema, nil, nil
	}
	return nil, nil, fmt.Errorf("unknown schema %q (want university, parts, or cupid)", name)
}

// printTrace renders the recorded traversal event log, one line per
// event, indented under the query like the other per-query output.
func printTrace(w io.Writer, rec *core.TraceRecorder) {
	fmt.Fprintf(w, "  trace: %d events", len(rec.Events))
	if rec.Dropped > 0 {
		fmt.Fprintf(w, " (+%d dropped beyond the limit)", rec.Dropped)
	}
	fmt.Fprintln(w)
	for _, ev := range rec.Events {
		switch ev.Kind {
		case "enter":
			fmt.Fprintf(w, "    %5d %-14s %s seg=%d depth=%d %s\n",
				ev.Step, ev.Kind, ev.Class, ev.Seg, ev.Depth, ev.Label)
		case "offer", "offer_rejected":
			fmt.Fprintf(w, "    %5d %-14s %s %s\n", ev.Step, ev.Kind, ev.Path, ev.Label)
		case "preempt":
			fmt.Fprintf(w, "    %5d %-14s %s (shadowed by %s)\n", ev.Step, ev.Kind, ev.Path, ev.By)
		default: // prune_* and caution_save
			fmt.Fprintf(w, "    %5d %-14s %s -> %s seg=%d %s\n",
				ev.Step, ev.Kind, ev.Rel, ev.Class, ev.Seg, ev.Label)
		}
	}
}

func preset(name string) (core.Options, error) {
	switch name {
	case "paper":
		return core.Paper(), nil
	case "safe":
		return core.Safe(), nil
	case "exact":
		return core.Exact(), nil
	}
	return core.Options{}, fmt.Errorf("unknown engine %q (want paper, safe, or exact)", name)
}
