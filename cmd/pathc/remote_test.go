package main

// Remote-mode retry behavior: -retries 0 keeps today's fail-fast
// semantics, a positive budget waits out 429/503 answers honoring
// Retry-After, and non-overload failures are never retried.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// overloadedServer answers v1 envelopes: the first fail requests get
// failStatus (with a Retry-After hint), everything after succeeds.
func overloadedServer(t *testing.T, fail int, failStatus int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n <= int64(fail) {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(failStatus)
			w.Write([]byte(`{"data":null,"error":{"code":"overloaded","message":"admission queue full"},"meta":{"durationMs":0}}`))
			return
		}
		w.Write([]byte(`{"data":{"expr":"ta~name","completions":[]},"error":null,"meta":{"durationMs":1}}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRemoteRetryRecovers(t *testing.T) {
	ts, hits := overloadedServer(t, 2, http.StatusTooManyRequests)
	rc := remoteConfig{base: ts.URL, retries: 3}
	env, err := rc.post("/v1/complete", map[string]any{"expr": "ta~name"})
	if err != nil {
		t.Fatalf("post with retries: %v", err)
	}
	if env.Error != nil {
		t.Fatalf("envelope error after retries: %+v", env.Error)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3 (two sheds + one success)", got)
	}
}

func TestRemoteRetry503(t *testing.T) {
	ts, hits := overloadedServer(t, 1, http.StatusServiceUnavailable)
	rc := remoteConfig{base: ts.URL, retries: 1}
	if _, err := rc.post("/v1/complete", map[string]any{"expr": "ta~name"}); err != nil {
		t.Fatalf("post: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server hits = %d, want 2", got)
	}
}

// TestRemoteRetryDefaultOff: the zero value preserves the pre-flag
// behavior — one attempt, the overload error surfaced immediately.
func TestRemoteRetryDefaultOff(t *testing.T) {
	ts, hits := overloadedServer(t, 1, http.StatusTooManyRequests)
	rc := remoteConfig{base: ts.URL}
	_, err := rc.post("/v1/complete", map[string]any{"expr": "ta~name"})
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want the overload surfaced", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want exactly 1 without -retries", got)
	}
}

// TestRemoteRetryBudgetExhausted: more sheds than budget → the last
// overload answer is surfaced, after retries+1 total attempts.
func TestRemoteRetryBudgetExhausted(t *testing.T) {
	ts, hits := overloadedServer(t, 100, http.StatusTooManyRequests)
	rc := remoteConfig{base: ts.URL, retries: 2}
	if _, err := rc.post("/v1/complete", map[string]any{"expr": "ta~name"}); err == nil {
		t.Fatal("want error once the retry budget is exhausted")
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3 (initial + 2 retries)", got)
	}
}

// TestRemoteNoRetryOnClientError: a 4xx that is not overload is a
// real answer — retrying it would just repeat the mistake.
func TestRemoteNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"data":null,"error":{"code":"bad_request","message":"missing expr"},"meta":{"durationMs":0}}`))
	}))
	t.Cleanup(ts.Close)
	rc := remoteConfig{base: ts.URL, retries: 5}
	_, err := rc.post("/v1/complete", map[string]any{})
	if err == nil || !strings.Contains(err.Error(), "bad_request") {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want 1 (4xx is not retryable)", got)
	}
}

func TestRetryDelay(t *testing.T) {
	// Retry-After wins over the exponential fallback, with jitter
	// keeping the wait within ±25% of the hint.
	for i := 0; i < 50; i++ {
		d := retryDelay("1", 0)
		if d < 750*time.Millisecond || d > 1250*time.Millisecond {
			t.Fatalf("retryDelay(\"1\") = %v, want ~1s", d)
		}
	}
	// No hint: exponential from the base.
	for i := 0; i < 50; i++ {
		if d := retryDelay("", 0); d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("retryDelay(\"\", 0) = %v, want ~100ms", d)
		}
		if d := retryDelay("", 2); d < 300*time.Millisecond || d > 500*time.Millisecond {
			t.Fatalf("retryDelay(\"\", 2) = %v, want ~400ms", d)
		}
	}
	// The cap bounds both a huge hint and a deep attempt, and an
	// unparsable hint (e.g. an HTTP-date) falls back to exponential.
	if d := retryDelay("3600", 0); d > retryMaxDelay+retryMaxDelay/4 {
		t.Errorf("huge Retry-After not capped: %v", d)
	}
	if d := retryDelay("", 60); d > retryMaxDelay+retryMaxDelay/4 {
		t.Errorf("deep attempt not capped: %v", d)
	}
	if d := retryDelay("Wed, 21 Oct 2026 07:28:00 GMT", 0); d < 75*time.Millisecond || d > 125*time.Millisecond {
		t.Errorf("unparsable hint should fall back to exponential, got %v", d)
	}
	if d := retryDelay("0", 5); d != 0 {
		t.Errorf("Retry-After 0 should not wait, got %v", d)
	}
}
