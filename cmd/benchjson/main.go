// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON document on stdout:
//
//	go test -bench='UniversityTaName|SchemaScaling' -benchmem -run xxx . | benchjson > BENCH_core.json
//
// Each benchmark line becomes one record with the standard metrics
// (ns/op, B/op, allocs/op) plus any custom b.ReportMetric columns
// (e.g. the figure benches' recall/precision/answers). Non-benchmark
// lines are ignored, so the tool can be fed the raw `go test` stream.
// The JSON carries enough context (goos/goarch/pkg/cpu when present)
// to compare runs across machines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result row.
type record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	BPerOp  float64            `json:"bytes_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// document is the full output: environment header + rows.
type document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []record `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found in input")
	}
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	doc := &document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   910 B/op   11 allocs/op   0.95 recall
//
// into a record. Unknown units land in Metrics.
func parseBench(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return record{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix; it is machine detail, and the
		// cpu header already records the machine.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Runs: runs}
	// The rest alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.Allocs = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
