package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pathcomplete
cpu: Example CPU @ 2.0GHz
BenchmarkUniversityTaName/paper-8         	  226455	      5239 ns/op	    4376 B/op	      52 allocs/op
BenchmarkFigure5-8	     100	   1017000 ns/op	        0.950 recall	        0.600 precision
PASS
ok  	pathcomplete	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "pathcomplete" {
		t.Errorf("header parsed wrong: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("want 2 results, got %d: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkUniversityTaName/paper" || r.Runs != 226455 ||
		r.NsPerOp != 5239 || r.BPerOp != 4376 || r.Allocs != 52 {
		t.Errorf("row 0 parsed wrong: %+v", r)
	}
	f := doc.Results[1]
	if f.Name != "BenchmarkFigure5" || f.Metrics["recall"] != 0.950 || f.Metrics["precision"] != 0.600 {
		t.Errorf("row 1 parsed wrong: %+v", f)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nrandom text\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Errorf("want no results, got %+v", doc.Results)
	}
}
