package main

import "testing"

// TestRunStatic covers the table/figure printers, which have no
// workload dependency.
func TestRunStatic(t *testing.T) {
	if err := run(false, true, true, false, false, false, false, false, false, 0,
		1, 1, 2, 30, 60, 2, "paper", "", 1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunSweepSmall drives the Figure 5/6/7 paths on a reduced
// workload, including CSV emission.
func TestRunSweepSmall(t *testing.T) {
	dir := t.TempDir()
	if err := run(false, false, false, true, true, true, false, false, false, 0,
		5, 5, 3, 25, 50, 2, "paper", dir, 1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunStatsSmall drives the in-text statistics path with a tight
// enumeration cap.
func TestRunStatsSmall(t *testing.T) {
	if err := run(false, false, false, false, false, false, true, false, false, 0,
		5, 5, 3, 25, 50, 2, "safe", "", 500); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunScalingSmall drives the scaling sweep path... with the fixed
// size list this is the slowest cmd test, so it stays at E=1.
func TestRunScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	if err := run(false, false, false, false, false, false, false, false, true, 0,
		5, 5, 2, 25, 50, 1, "paper", "", 1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunOrdersSmall drives the ordering ablation path.
func TestRunOrdersSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering ablation in -short mode")
	}
	if err := run(false, false, false, false, false, false, false, true, false, 0,
		1994, 42, 3, 30, 60, 2, "paper", "", 1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunErrors covers configuration validation.
func TestRunErrors(t *testing.T) {
	if err := run(false, false, false, true, false, false, false, false, false, 0,
		1, 1, 2, 30, 60, 2, "nope", "", 1000); err == nil {
		t.Error("unknown engine should error")
	}
	if err := run(false, false, false, true, false, false, false, false, false, 0,
		1, 1, 2, 3, 2, 2, "paper", "", 1000); err == nil {
		t.Error("impossible generator config should error")
	}
}

// TestRunMultiSubjectSmall drives the multi-subject path with two
// subjects on a reduced workload.
func TestRunMultiSubjectSmall(t *testing.T) {
	if err := run(false, false, false, false, false, false, false, false, false, 2,
		5, 5, 3, 25, 50, 2, "paper", "", 1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPreset(t *testing.T) {
	for _, name := range []string{"paper", "safe", "exact"} {
		if _, err := preset(name); err != nil {
			t.Errorf("preset(%s): %v", name, err)
		}
	}
	if _, err := preset("zzz"); err == nil {
		t.Error("unknown preset should error")
	}
}
