// Command experiments regenerates every table and figure of the
// paper's evaluation (Ioannidis & Lashkari, SIGMOD 1994) on the
// CUPID-scale synthetic workload:
//
//	experiments -all               # everything, ASCII rendering
//	experiments -fig5 -fig6        # the recall/precision sweep only
//	experiments -fig7 -queries 10  # response times, paper-sized query set
//	experiments -csv out/          # also write CSV files for plotting
//
// All runs are deterministic in -seed and -oracleseed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pathcomplete/internal/altorder"
	"pathcomplete/internal/connector"
	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/experiment"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "print Table 1 (the CON_c function)")
		fig3     = flag.Bool("fig3", false, "print the Figure 3 partial order")
		fig5     = flag.Bool("fig5", false, "run the Figure 5 recall sweep")
		fig6     = flag.Bool("fig6", false, "run the Figure 6 precision sweep")
		fig7     = flag.Bool("fig7", false, "run the Figure 7 response-time experiment")
		stats    = flag.Bool("stats", false, "reproduce the in-text statistics of Section 5.3")
		orders   = flag.Bool("orders", false, "run the connector-ordering ablation (Section 7)")
		scaling  = flag.Bool("scaling", false, "run the schema-size scaling sweep")
		subjects = flag.Int("subjects", 0, "run the multi-subject sweep with this many simulated subjects")
		seed     = flag.Int64("seed", 1994, "schema generator seed")
		oseed    = flag.Int64("oracleseed", 42, "user-oracle seed")
		queries  = flag.Int("queries", 10, "number of incomplete path expressions (the paper used 10)")
		classes  = flag.Int("classes", 92, "user-defined classes (the paper's CUPID schema had 92)")
		relpairs = flag.Int("relpairs", 182, "relationship pairs (the paper had 364 relationships = 182 pairs)")
		maxE     = flag.Int("maxe", 5, "largest E in the sweep")
		engine   = flag.String("engine", "paper", "search engine preset: paper, safe, or exact")
		csvDir   = flag.String("csv", "", "directory to also write CSV files into")
		enum     = flag.Int("enumlimit", 2_000_000, "consistent-path enumeration cap for -stats")
	)
	flag.Parse()
	if !(*all || *table1 || *fig3 || *fig5 || *fig6 || *fig7 || *stats || *orders || *scaling || *subjects > 0) {
		*all = true
	}
	if err := run(*all, *table1, *fig3, *fig5, *fig6, *fig7, *stats, *orders, *scaling, *subjects,
		*seed, *oseed, *queries, *classes, *relpairs, *maxE, *engine, *csvDir, *enum); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(all, table1, fig3, fig5, fig6, fig7, stats, orders, scaling bool, subjects int,
	seed, oseed int64, queries, classes, relpairs, maxE int,
	engine, csvDir string, enumLimit int) error {

	if all || table1 {
		printTable1()
	}
	if all || fig3 {
		printFigure3()
	}
	if !(all || fig5 || fig6 || fig7 || stats || orders || scaling || subjects > 0) {
		return nil
	}

	base, err := preset(engine)
	if err != nil {
		return err
	}
	cfg := cupid.DefaultConfig()
	cfg.Seed = seed
	cfg.Classes = classes
	cfg.RelPairs = relpairs
	w, err := cupid.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload: schema %q, %d user classes, %d relationships, %d hubs; %d queries; engine %s\n\n",
		w.Schema.Name(), w.Schema.NumUserClasses(), w.Schema.NumRels(), len(w.Hubs), queries, engine)

	r, err := experiment.NewRunner(w, oseed, queries)
	if err != nil {
		return err
	}
	r.Base = base
	if err := r.Prepare(); err != nil {
		return err
	}

	if all || fig5 || fig6 {
		sw, err := r.Sweep(maxE)
		if err != nil {
			return err
		}
		var xs []int
		var rec, prec, precDK []float64
		for i, p := range sw.Points {
			xs = append(xs, p.E)
			rec = append(rec, p.Recall)
			prec = append(prec, p.Precision)
			precDK = append(precDK, sw.PointsDK[i].Precision)
		}
		if all || fig5 {
			if err := experiment.RenderFigure(os.Stdout, "Figure 5: Average Recall Fraction (paper: flat at ~0.90)", xs, rec); err != nil {
				return err
			}
			fmt.Println()
		}
		if all || fig6 {
			if err := experiment.RenderFigure(os.Stdout, "Figure 6: Average Precision Fraction, domain independent (paper: 1.00 -> ~0.55)", xs, prec); err != nil {
				return err
			}
			fmt.Println()
			if err := experiment.RenderFigure(os.Stdout, "Figure 6: Average Precision Fraction, with domain knowledge (paper: stays ~0.93)", xs, precDK); err != nil {
				return err
			}
			fmt.Println()
		}
		if err := experiment.RenderSweep(os.Stdout, sw); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			if err := writeCSV(csvDir, "sweep.csv", func(f *os.File) error {
				return experiment.SweepCSV(f, sw)
			}); err != nil {
				return err
			}
		}
	}

	if all || fig7 {
		tm, err := r.Timing(maxE)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7: Response Time Per Query (paper: avg 6.29s, max 14.45s, 0.17ms/call on a DECstation 5000/25)")
		if err := experiment.RenderTiming(os.Stdout, tm); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			if err := writeCSV(csvDir, "timing.csv", func(f *os.File) error {
				return experiment.TimingCSV(f, tm)
			}); err != nil {
				return err
			}
		}
	}

	if all || stats {
		st, err := r.Stats(enumLimit)
		if err != nil {
			return err
		}
		fmt.Println("Section 5.3 in-text statistics")
		if err := experiment.RenderStats(os.Stdout, st); err != nil {
			return err
		}
		fmt.Println()
	}

	if subjects > 0 {
		base, err := preset(engine)
		if err != nil {
			return err
		}
		pts, err := experiment.MultiSubject(w, base, subjects, oseed, queries, maxE)
		if err != nil {
			return err
		}
		fmt.Println("Multi-subject sweep (the paper's §7 future-work item 1)")
		if err := experiment.RenderSubjects(os.Stdout, subjects, pts); err != nil {
			return err
		}
		fmt.Println()
	}

	if scaling {
		base, err := preset(engine)
		if err != nil {
			return err
		}
		pts, err := experiment.ScaleSweep([]int{25, 50, 100, 200}, seed, oseed, 5, maxE, base)
		if err != nil {
			return err
		}
		fmt.Printf("Schema-size scaling (engine %s, E=%d, 5 queries per size)\n", engine, maxE)
		if err := experiment.RenderScale(os.Stdout, pts); err != nil {
			return err
		}
		fmt.Println()
	}

	if orders {
		// The ordering ablation ranks full enumerations, which the
		// CUPID-scale schema makes prohibitive, so it runs on a reduced
		// workload of class-anchored queries — the ones whose candidate
		// sets mix structural and associative connectors, where the
		// choice of ≺ actually bites. Truth is the Figure 3 ranking at
		// E=1 (the paper's own adjudication is equally anchored on the
		// chosen order), so the scores measure how far each alternative
		// strays from it.
		small, err := cupid.Generate(cupid.Config{
			Seed: seed, Classes: 30, RelPairs: 60, Hubs: 1, HubFanout: 5,
		})
		if err != nil {
			return err
		}
		truthed, err := altorder.ClassAnchoredTruth(small.Schema, oseed, queries)
		if err != nil {
			return err
		}
		fmt.Println("Connector-ordering ablation (Section 7: the ≺ of Figure 3 vs alternatives)")
		fmt.Printf("%d class-anchored queries; truth = Figure 3 ranking at E=1\n", len(truthed))
		for _, eParam := range []int{1, 2} {
			scores, err := altorder.Compare(small.Schema, truthed, altorder.Catalogue(), eParam, 2_000_000)
			if err != nil {
				return err
			}
			fmt.Printf(" E=%d\n", eParam)
			for _, sc := range scores {
				fmt.Printf("  %s\n", sc)
			}
		}
	}
	return nil
}

func preset(name string) (core.Options, error) {
	switch name {
	case "paper":
		return core.Paper(), nil
	case "safe":
		return core.Safe(), nil
	case "exact":
		return core.Exact(), nil
	}
	return core.Options{}, fmt.Errorf("unknown engine %q (want paper, safe, or exact)", name)
}

func printTable1() {
	fmt.Println("Table 1: the CON_c function (rows = first argument, columns = second)")
	cs := connector.All()[:8] // the plain connectors, as printed in the paper
	fmt.Printf("%-6s", "Input")
	for _, c := range cs {
		fmt.Printf("%-6s", c)
	}
	fmt.Println()
	for _, a := range cs {
		fmt.Printf("%-6s", a)
		for _, b := range cs {
			fmt.Printf("%-6s", connector.Con(a, b))
		}
		fmt.Println()
	}
	fmt.Println("(a Possibly argument on either side makes the result Possibly)")
	fmt.Println()
}

func printFigure3() {
	fmt.Println("Figure 3: the better-than partial order ≺ (reconstructed; see DESIGN.md)")
	tiers := [][]string{
		{"@>", "<@"},
		{"$>", "<$", "$>*", "<$*"},
		{".", ".*"},
		{".SB", ".SP", ".SB*", ".SP*"},
		{"..", "..*"},
	}
	for i, tier := range tiers {
		fmt.Printf("  tier %d (strongest=0): %v\n", i, tier)
	}
	fmt.Println("  c1 ≺ c2 iff tier(c1) < tier(c2); same-tier connectors are incomparable")
	fmt.Println()
}

func writeCSV(dir, name string, fill func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fill(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", filepath.Join(dir, name))
	return nil
}
