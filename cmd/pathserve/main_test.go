package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildVariants(t *testing.T) {
	cases := []struct {
		name, schema string
		sample       bool
		engine       string
	}{
		{"university", "university", false, "paper"},
		{"university sample", "university", true, "exact"},
		{"parts", "parts", false, "safe"},
	}
	for _, tc := range cases {
		sv, s, err := build(tc.schema, "", "", tc.sample, tc.engine, 1)
		if err != nil {
			t.Errorf("%s: build: %v", tc.name, err)
			continue
		}
		if sv == nil || s == nil {
			t.Errorf("%s: nil result", tc.name)
			continue
		}
		// The handler answers health checks.
		ts := httptest.NewServer(sv.Handler())
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Errorf("%s: healthz: %v", tc.name, err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s: healthz status %d", tc.name, resp.StatusCode)
			}
		}
		ts.Close()
	}
}

func TestBuildSDL(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.sdl")
	if err := os.WriteFile(p, []byte("schema tiny\nisa a b\nattr b v I\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, s, err := build("", p, "", false, "paper", 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.Name() != "tiny" {
		t.Errorf("schema name = %q", s.Name())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build("nope", "", "", false, "paper", 1); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build("university", "", "", false, "warp", 1); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build("", "/nonexistent.sdl", "", false, "paper", 1); err == nil {
		t.Error("missing SDL should error")
	}
	if _, _, err := build("university", "", "/nonexistent.json", false, "paper", 1); err == nil {
		t.Error("missing store should error")
	}
}
