package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBuildVariants(t *testing.T) {
	cases := []struct {
		name, schema string
		sample       bool
		engine       string
	}{
		{"university", "university", false, "paper"},
		{"university sample", "university", true, "exact"},
		{"parts", "parts", false, "safe"},
	}
	for _, tc := range cases {
		sv, s, err := build(tc.schema, "", "", tc.sample, tc.engine, 1)
		if err != nil {
			t.Errorf("%s: build: %v", tc.name, err)
			continue
		}
		if sv == nil || s == nil {
			t.Errorf("%s: nil result", tc.name)
			continue
		}
		// The handler answers health checks with the JSON liveness
		// document.
		ts := httptest.NewServer(sv.Handler())
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Errorf("%s: healthz: %v", tc.name, err)
		} else {
			var health struct {
				Status string `json:"status"`
				Schema string `json:"schema"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
				t.Errorf("%s: healthz decode: %v", tc.name, err)
			} else if health.Status != "ok" || health.Schema != tc.schema {
				t.Errorf("%s: healthz = %+v", tc.name, health)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s: healthz status %d", tc.name, resp.StatusCode)
			}
		}
		ts.Close()
	}
}

// pickAddr reserves a free localhost port and releases it for the
// server under test (a benign race: nothing else grabs it in-process).
func pickAddr(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(ts.URL, "http://")
	ts.Close()
	return addr
}

func TestServeGracefulShutdown(t *testing.T) {
	sv, _, err := build("university", "", "", false, "paper", 1)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	addr := pickAddr(t)
	srv := &http.Server{Addr: addr, Handler: sv.Handler()}
	done := make(chan error, 1)
	go func() { done <- serve(srv, logger) }()

	// Wait for the listener, then verify it serves.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// SIGTERM must drain and return nil (graceful), not crash.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
}

func TestServeListenError(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := &http.Server{Addr: "256.256.256.256:99999"}
	if err := serve(srv, logger); err == nil {
		t.Error("impossible address should surface the listen error")
	}
}

func TestBuildSDL(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.sdl")
	if err := os.WriteFile(p, []byte("schema tiny\nisa a b\nattr b v I\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, s, err := build("", p, "", false, "paper", 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.Name() != "tiny" {
		t.Errorf("schema name = %q", s.Name())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build("nope", "", "", false, "paper", 1); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build("university", "", "", false, "warp", 1); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build("", "/nonexistent.sdl", "", false, "paper", 1); err == nil {
		t.Error("missing SDL should error")
	}
	if _, _, err := build("university", "", "/nonexistent.json", false, "paper", 1); err == nil {
		t.Error("missing store should error")
	}
}
