package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pathcomplete/internal/server"
)

func TestBuildVariants(t *testing.T) {
	cases := []struct {
		name, schema string
		sample       bool
		engine       string
	}{
		{"university", "university", false, "paper"},
		{"university sample", "university", true, "exact"},
		{"parts", "parts", false, "safe"},
	}
	for _, tc := range cases {
		sv, s, err := build(config{schemaName: tc.schema, sample: tc.sample, engine: tc.engine, e: 1})
		if err != nil {
			t.Errorf("%s: build: %v", tc.name, err)
			continue
		}
		if sv == nil || s == nil {
			t.Errorf("%s: nil result", tc.name)
			continue
		}
		// The handler answers health checks with the JSON liveness
		// document.
		ts := httptest.NewServer(sv.Handler())
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Errorf("%s: healthz: %v", tc.name, err)
		} else {
			var health struct {
				Status string `json:"status"`
				Schema string `json:"schema"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
				t.Errorf("%s: healthz decode: %v", tc.name, err)
			} else if health.Status != "ok" || health.Schema != tc.schema {
				t.Errorf("%s: healthz = %+v", tc.name, health)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s: healthz status %d", tc.name, resp.StatusCode)
			}
		}
		ts.Close()
	}
}

// TestBuildAppliesLimits: the hardened-path flags land on the server's
// resolved limits.
func TestBuildAppliesLimits(t *testing.T) {
	sv, _, err := build(config{
		schemaName:  "university",
		engine:      "paper",
		e:           1,
		timeout:     2 * time.Second,
		maxTimeout:  10 * time.Second,
		maxInflight: 7,
		queue:       3,
		maxBody:     2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	lim := sv.Limits()
	if lim.DefaultTimeout != 2*time.Second || lim.MaxTimeout != 10*time.Second ||
		lim.MaxConcurrent != 7 || lim.MaxQueue != 3 || lim.MaxBodyBytes != 2048 {
		t.Errorf("limits = %+v", lim)
	}
}

// TestBuildAppliesTracing: the tracing flags land on the server's span
// pipeline; with all three at zero the default pipeline stays in place.
func TestBuildAppliesTracing(t *testing.T) {
	cfg := config{schemaName: "university", engine: "paper", e: 1,
		traceSample: 0.25, slowThreshold: 250 * time.Millisecond, spanBuffer: 64,
		inboundLimit: 16}
	sv, _, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.applyTracing(sv)
	got := sv.Tracing().Config()
	if got.SampleRate != 0.25 || got.SlowThreshold != 250*time.Millisecond || got.BufferSize != 64 ||
		got.InboundLimit != 16 {
		t.Errorf("tracing config = %+v", got)
	}

	sv2, _, err := build(config{schemaName: "university", engine: "paper", e: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := sv2.Tracing()
	(config{}).applyTracing(sv2)
	if sv2.Tracing() != before {
		t.Error("zero tracing flags replaced the default pipeline")
	}
}

// TestValidateFlags is the startup-validation table: a misconfigured
// process must refuse to start, not serve with clamped values.
func TestValidateFlags(t *testing.T) {
	valid := config{schemaName: "university", engine: "paper", e: 1, maxTimeout: 30 * time.Second}
	cases := []struct {
		name    string
		mutate  func(*config)
		wantErr string
	}{
		{"valid", func(c *config) {}, ""},
		{"e zero", func(c *config) { c.e = 0 }, "-e must be >= 1"},
		{"e negative", func(c *config) { c.e = -3 }, "-e must be >= 1"},
		{"cache negative", func(c *config) { c.cacheCap = -1 }, "-cache must be >= 0"},
		{"unknown engine", func(c *config) { c.engine = "warp" }, "unknown engine"},
		{"sample on parts", func(c *config) { c.schemaName = "parts"; c.sample = true }, "-sample only applies"},
		{"negative timeout", func(c *config) { c.timeout = -time.Second }, "-timeout must be >= 0"},
		{"negative max-timeout", func(c *config) { c.maxTimeout = -time.Second }, "-max-timeout must be >= 0"},
		{"timeout above cap", func(c *config) { c.timeout = time.Minute }, "exceeds -max-timeout"},
		{"negative inflight", func(c *config) { c.maxInflight = -1 }, "-max-inflight must be >= 0"},
		{"queue below -1", func(c *config) { c.queue = -2 }, "-queue must be >= -1"},
		{"negative body cap", func(c *config) { c.maxBody = -5 }, "-max-body must be >= 0"},
		{"bad faults spec", func(c *config) { c.faults = "delay=lots" }, "-faults"},
		{"bad legacy-routes mode", func(c *config) { c.legacyRoutes = "maybe" }, "unknown -legacy-routes mode"},
		{"legacy-routes off ok", func(c *config) { c.legacyRoutes = "off" }, ""},
		{"queue minus one ok", func(c *config) { c.queue = -1 }, ""},
		{"trace-sample negative", func(c *config) { c.traceSample = -0.1 }, "-trace-sample must be in [0, 1]"},
		{"trace-sample above one", func(c *config) { c.traceSample = 1.5 }, "-trace-sample must be in [0, 1]"},
		{"negative slow-threshold", func(c *config) { c.slowThreshold = -time.Second }, "-slow-threshold must be >= 0"},
		{"negative span-buffer", func(c *config) { c.spanBuffer = -1 }, "-span-buffer must be >= 0"},
		{"NaN inbound limit", func(c *config) { c.inboundLimit = math.NaN() }, "-trace-inbound-limit must be finite"},
		{"inf inbound limit", func(c *config) { c.inboundLimit = math.Inf(1) }, "-trace-inbound-limit must be finite"},
		{"negative inbound limit ok", func(c *config) { c.inboundLimit = -1 }, ""},
		{"persist without closure", func(c *config) { c.persistOn = true; c.dataDir = "/tmp/x" }, "-persist requires -closure"},
		{"persist without data-dir", func(c *config) { c.persistOn = true; c.closureOn = true; c.closureWorkers = 1 }, "-persist requires -data-dir"},
		{"data-dir without persist", func(c *config) { c.dataDir = "/tmp/x" }, "-data-dir requires -persist"},
		{"persist ok", func(c *config) {
			c.persistOn = true
			c.closureOn = true
			c.closureWorkers = 1
			c.dataDir = "/tmp/x"
		}, ""},
		{"tracing knobs ok", func(c *config) {
			c.traceSample = 0.01
			c.slowThreshold = 250 * time.Millisecond
			c.spanBuffer = 64
			c.inboundLimit = 16
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidConfig: run surfaces validation errors before
// binding a listener.
func TestRunRejectsInvalidConfig(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	err := run(config{schemaName: "university", engine: "paper", e: 0}, logger)
	if err == nil || !strings.Contains(err.Error(), "-e must be >= 1") {
		t.Errorf("run with -e 0 = %v", err)
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-schema", "parts", "-engine", "exact", "-e", "3",
		"-timeout", "5s", "-max-inflight", "9", "-queue", "-1",
		"-max-body", "4096", "-faults", "delay=0.5,seed=1",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if cfg.schemaName != "parts" || cfg.engine != "exact" || cfg.e != 3 ||
		cfg.timeout != 5*time.Second || cfg.maxInflight != 9 || cfg.queue != -1 ||
		cfg.maxBody != 4096 || cfg.faults != "delay=0.5,seed=1" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.maxTimeout != server.DefaultMaxTimeout || cfg.cacheCap != server.DefaultCacheCap {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-e", "not-a-number"}); err == nil {
		t.Error("unparsable flag value should error")
	}
}

// pickAddr reserves a free localhost port and releases it for the
// server under test (a benign race: nothing else grabs it in-process).
func pickAddr(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(ts.URL, "http://")
	ts.Close()
	return addr
}

func TestServeGracefulShutdown(t *testing.T) {
	sv, _, err := build(config{schemaName: "university", engine: "paper", e: 1})
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	addr := pickAddr(t)
	srv := &http.Server{Addr: addr, Handler: sv.Handler()}
	done := make(chan error, 1)
	drained := make(chan struct{})
	go func() { done <- serve(srv, logger, nil, func() { close(drained) }) }()

	// Wait for the listener, then verify it serves.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// SIGTERM must drain and return nil (graceful), not crash.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
	select {
	case <-drained:
	default:
		t.Error("drain hook did not run during shutdown")
	}
}

func TestServeListenError(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := &http.Server{Addr: "256.256.256.256:99999"}
	if err := serve(srv, logger, nil, nil); err == nil {
		t.Error("impossible address should surface the listen error")
	}
}

// TestBuildPersistRestore boots the full pathserve wiring with
// durable persistence twice over one data directory: the first boot
// compiles, warms, and saves; the second restores from disk — each
// stage observed through the public HTTP surfaces (/v1/schemas/{name}
// persistStatus, /readyz).
func TestBuildPersistRestore(t *testing.T) {
	data := t.TempDir()
	cfg := config{schemaName: "university", engine: "exact", e: 1,
		closureOn: true, closureWorkers: 1, persistOn: true, dataDir: data}

	type detail struct {
		ClosureStatus struct {
			State    string `json:"state"`
			Restored bool   `json:"restored"`
		} `json:"closureStatus"`
		PersistStatus struct {
			Enabled  bool `json:"enabled"`
			Saved    bool `json:"saved"`
			Restored bool `json:"restored"`
		} `json:"persistStatus"`
	}
	getDetail := func(ts *httptest.Server) detail {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/schemas/university")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Data detail `json:"data"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return env.Data
	}
	assertReady := func(ts *httptest.Server) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("readyz = %d, want 200", resp.StatusCode)
		}
	}

	sv1, _, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(sv1.Handler())
	defer ts1.Close()
	assertReady(ts1)
	deadline := time.Now().Add(10 * time.Second)
	var d detail
	for d = getDetail(ts1); !d.PersistStatus.Saved; d = getDetail(ts1) {
		if time.Now().After(deadline) {
			t.Fatalf("first boot never persisted: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !d.PersistStatus.Enabled || d.PersistStatus.Restored {
		t.Fatalf("first boot persistStatus = %+v, want enabled+saved, not restored", d.PersistStatus)
	}
	sv1.BeginDrain() // the SIGTERM path: flush anything still pending

	sv2, _, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	assertReady(ts2)
	d2 := getDetail(ts2)
	if d2.ClosureStatus.State != "ready" || !d2.ClosureStatus.Restored {
		t.Fatalf("restart closure = %+v, want ready+restored with no rebuild", d2.ClosureStatus)
	}
	if !d2.PersistStatus.Restored || !d2.PersistStatus.Saved {
		t.Fatalf("restart persistStatus = %+v, want saved+restored", d2.PersistStatus)
	}
}

func TestBuildSDL(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.sdl")
	if err := os.WriteFile(p, []byte("schema tiny\nisa a b\nattr b v I\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, s, err := build(config{sdlPath: p, engine: "paper", e: 1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.Name() != "tiny" {
		t.Errorf("schema name = %q", s.Name())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build(config{schemaName: "nope", engine: "paper", e: 1}); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build(config{schemaName: "university", engine: "warp", e: 1}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("err = %v", err)
	}
	if _, _, err := build(config{sdlPath: "/nonexistent.sdl", engine: "paper", e: 1}); err == nil {
		t.Error("missing SDL should error")
	}
	if _, _, err := build(config{schemaName: "university", storePath: "/nonexistent.json", engine: "paper", e: 1}); err == nil {
		t.Error("missing store should error")
	}
}
