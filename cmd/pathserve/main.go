// Command pathserve serves the disambiguation mechanism over
// HTTP/JSON — the backend an interactive query interface (the paper's
// Figure 1) would call:
//
//	pathserve -addr :8080 -schema university -sample
//	pathserve -addr :8080 -schemas-dir ./schemas -default-schema university
//	pathserve -addr :8080 -schema university -closure -closure-max-bytes 268435456
//	pathserve -addr :8080 -schemas-dir ./schemas -closure -persist -data-dir ./data
//	pathserve -addr :8080 -schema university -trace-sample 0.01 -slow-threshold 250ms
//	curl -s localhost:8080/v1/complete -d '{"expr":"ta~name"}'
//	curl -s localhost:8080/v1/traces
//	curl -s localhost:8080/v1/traces/4bf92f3577b34da6a3ce929d0e0e4736
//	curl -s localhost:8080/v1/queries/slow
//	curl -s localhost:8080/v1/schemas
//	curl -s localhost:8080/v1/schemas/university
//	curl -s -X POST localhost:8080/v1/schemas/reload
//	curl -s localhost:8080/v1/explain -d '{"expr":"ta~name"}'
//	curl -s 'localhost:8080/v1/explain?expr=ta~name'
//	curl -s localhost:8080/complete -d '{"expr":"ta~name"}'          # deprecated, still served (see -legacy-routes)
//	curl -s localhost:8080/complete?schema=parts -d '{"expr":"p~weight"}'
//	curl -s localhost:8080/schemas
//	curl -s -X POST localhost:8080/schemas/reload
//	curl -s localhost:8080/complete -d '{"expr":"ta~name","trace":true}'
//	curl -s localhost:8080/complete -d '{"expr":"ta~name","timeoutMs":50}'
//	curl -s localhost:8080/evaluate -d '{"expr":"ta~name","approve":[0]}'
//	curl -s localhost:8080/schema
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s localhost:8080/buildinfo
//
// The process is production-shaped: slog request logging with request
// IDs, Prometheus-style metrics at /metrics, optional pprof at
// /debug/pprof/ (-pprof), connection timeouts, a bounded completion
// cache (-cache), and graceful shutdown on SIGINT/SIGTERM. The serving
// path is hardened: every search runs under a wall-clock deadline
// (-timeout, capped by -max-timeout) and degrades to its best-so-far
// answer, concurrency is bounded by an admission gate (-max-inflight,
// -queue) that sheds with 429 beyond the queue, request bodies are
// size-capped (-max-body), handler panics are isolated, and a
// fault-injection switchboard (-faults / PATHCOMPLETE_FAULTS) exists
// for chaos drills.
//
// With -schemas-dir the server is multi-schema: every *.sdl file in
// the directory is served under its base name, requests pick one with
// ?schema=, and SIGHUP (or POST /schemas/reload) reparses the
// directory and swaps atomically — in-flight searches finish on the
// snapshot they started with, and a failed reload leaves the previous
// generation serving.
//
// With -closure -persist -data-dir the warmed closure state is also
// durable: each schema's compiled index is written to the data
// directory (checksummed, fsynced, atomically renamed) when warming
// completes, and the next boot restores it instead of recompiling —
// corrupt, stale, or torn files are quarantined and the schema falls
// back to a fresh compile, so bad durable state never fails a start.
// /readyz reports readiness (default schema installed, recovery done,
// not draining) alongside the pure-liveness /healthz; SIGTERM flips
// /readyz not-ready and flushes pending saves before draining.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/faultinject"
	"pathcomplete/internal/objstore"
	"pathcomplete/internal/obs"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/persist"
	"pathcomplete/internal/registry"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/server"
	"pathcomplete/internal/uni"
)

// config carries every flag value; split from flag parsing so startup
// validation and server assembly are table-testable.
type config struct {
	addr          string
	schemaName    string
	sdlPath       string
	schemasDir    string
	defaultSchema string
	storePath     string
	sample        bool
	engine        string
	e             int
	parallel      int
	pprofOn       bool
	cacheCap      int
	quiet         bool
	legacyRoutes  string // legacy (pre-/v1) route mode: on, warn, off

	// Hardened-path knobs.
	timeout     time.Duration // default per-request search deadline (0: none)
	maxTimeout  time.Duration // cap on any per-request "timeoutMs" (0: server default)
	maxInflight int           // admission gate width (0: server default)
	queue       int           // admission wait queue (0: default, -1: none)
	maxBody     int64         // POST body cap in bytes (0: server default)
	faults      string        // fault-injection spec ("": also consult PATHCOMPLETE_FAULTS)

	// Interactive sessions (/v1/sessions).
	maxSessions     int           // open-session cap (0: server default)
	sessionDebounce time.Duration // keystroke settle window (0: default; <0: none)

	// Materialized all-pairs closure.
	closureOn       bool  // warm an all-pairs index per schema snapshot
	closureMaxBytes int64 // byte budget across all live indexes (0: unbounded)
	closureWorkers  int   // concurrent background builds

	// Durable state (crash-safe snapshot persistence).
	persistOn bool   // persist warmed closure state; restore it on boot
	dataDir   string // directory holding the durable snapshot files

	// Span pipeline (/v1/traces, /v1/queries/slow).
	traceSample   float64       // head-sampling rate in [0, 1]
	slowThreshold time.Duration // retain+log any request at least this slow (0: off)
	spanBuffer    int           // retained-trace ring size (0: server default)
	inboundLimit  float64       // client-forced samples/sec (0: unlimited; <0: ignore the flag)
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("pathserve", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.schemaName, "schema", "university", "built-in schema: university, parts, or cupid")
	fs.StringVar(&cfg.sdlPath, "sdl", "", "load the schema from an SDL file instead")
	fs.StringVar(&cfg.schemasDir, "schemas-dir", "", "serve every *.sdl schema in this directory (multi-schema mode; SIGHUP or POST /schemas/reload hot-reloads it)")
	fs.StringVar(&cfg.defaultSchema, "default-schema", "", "schema name requests without ?schema= resolve to (multi-schema mode; default: first name in sorted order)")
	fs.StringVar(&cfg.storePath, "store", "", "load object data from a snapshot file")
	fs.BoolVar(&cfg.sample, "sample", false, "mount the built-in sample data (university only)")
	fs.StringVar(&cfg.engine, "engine", "paper", "engine preset: paper, safe, or exact")
	fs.IntVar(&cfg.e, "e", 1, "AGG* parameter (>= 1)")
	fs.IntVar(&cfg.parallel, "parallel", 0, "fan root branches across N workers per search (0 or 1: sequential)")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.IntVar(&cfg.cacheCap, "cache", server.DefaultCacheCap, "completion memo cache bound (entries, >= 0)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress per-request logging")
	fs.StringVar(&cfg.legacyRoutes, "legacy-routes", server.LegacyWarn, "legacy (pre-/v1) route serving: on (deprecation headers only), warn (adds the RFC 8594 Sunset date and a one-time log per route), off (410 Gone naming the /v1 successor)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-request search deadline (0: none beyond -max-timeout)")
	fs.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "cap on any per-request timeoutMs")
	fs.IntVar(&cfg.maxInflight, "max-inflight", server.DefaultMaxConcurrent, "max searches running at once")
	fs.IntVar(&cfg.queue, "queue", server.DefaultMaxQueue, "admission wait queue length (-1: shed immediately when saturated)")
	fs.Int64Var(&cfg.maxBody, "max-body", server.DefaultMaxBodyBytes, "POST body size cap in bytes")
	fs.StringVar(&cfg.faults, "faults", "", "fault-injection spec for chaos drills (e.g. delay=0.2,error=0.1); also read from "+faultinject.EnvVar)
	fs.IntVar(&cfg.maxSessions, "max-sessions", server.DefaultMaxSessions, "max interactive WebSocket sessions open at once (/v1/sessions; beyond it connects are refused with 429)")
	fs.DurationVar(&cfg.sessionDebounce, "session-debounce", server.DefaultSessionDebounce, "keystroke settle window per session: updates arriving within it coalesce into one search (negative: react to every keystroke immediately)")
	fs.BoolVar(&cfg.closureOn, "closure", false, "warm a materialized all-pairs closure index per schema snapshot in the background; single-gap queries are served from it once ready")
	fs.Int64Var(&cfg.closureMaxBytes, "closure-max-bytes", 256<<20, "byte budget across all live closure indexes and in-progress builds (0: unbounded); a build that would exceed it stops and the snapshot serves through the search kernel")
	fs.IntVar(&cfg.closureWorkers, "closure-workers", 1, "concurrent background closure builds (>= 1)")
	fs.BoolVar(&cfg.persistOn, "persist", false, "durably persist each schema's compiled closure state to -data-dir when it finishes warming, and restore it (checksum- and schema-verified) on startup instead of recompiling; requires -closure and -data-dir")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "directory for durable state (created if absent; corrupt or stale snapshot files are moved to its quarantine/ subdirectory, never served)")
	fs.Float64Var(&cfg.traceSample, "trace-sample", 0, "head-sample this fraction of requests into /v1/traces (0: only client-forced and tail-rule traces; 1: every request)")
	fs.DurationVar(&cfg.slowThreshold, "slow-threshold", 0, "retain any request at least this slow in /v1/traces and log it at /v1/queries/slow regardless of sampling (0: off)")
	fs.IntVar(&cfg.spanBuffer, "span-buffer", 0, "retained-trace ring size (0: default "+fmt.Sprint(obs.DefaultTraceBuffer)+")")
	fs.Float64Var(&cfg.inboundLimit, "trace-inbound-limit", 0, "max client-forced samples per second honored from inbound traceparent sampled flags (0: unlimited; negative: ignore the flag entirely) — set on untrusted networks so clients cannot flush the trace ring")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// validate rejects nonsensical flag combinations at startup, before a
// listener is bound — a misconfigured server must fail loudly, not
// serve with silently-clamped values.
func (cfg config) validate() error {
	if cfg.e < 1 {
		return fmt.Errorf("-e must be >= 1, got %d", cfg.e)
	}
	if cfg.cacheCap < 0 {
		return fmt.Errorf("-cache must be >= 0, got %d", cfg.cacheCap)
	}
	if cfg.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", cfg.parallel)
	}
	switch cfg.engine {
	case "paper", "safe", "exact":
	default:
		return fmt.Errorf("unknown engine %q (want paper, safe, or exact)", cfg.engine)
	}
	switch cfg.legacyRoutes {
	case "", server.LegacyOn, server.LegacyWarn, server.LegacyOff: // "": the server default (warn)
	default:
		return fmt.Errorf("unknown -legacy-routes mode %q (want on, warn, or off)", cfg.legacyRoutes)
	}
	if cfg.sample && (cfg.schemaName != "university" || cfg.sdlPath != "") {
		return fmt.Errorf("-sample only applies to -schema university")
	}
	if cfg.schemasDir != "" {
		if cfg.sdlPath != "" {
			return fmt.Errorf("-schemas-dir and -sdl are mutually exclusive")
		}
		if cfg.sample {
			return fmt.Errorf("-schemas-dir and -sample are mutually exclusive")
		}
		if cfg.storePath != "" {
			return fmt.Errorf("-schemas-dir and -store are mutually exclusive (stores are single-schema)")
		}
	}
	if cfg.defaultSchema != "" && cfg.schemasDir == "" {
		return fmt.Errorf("-default-schema requires -schemas-dir")
	}
	if cfg.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", cfg.timeout)
	}
	if cfg.maxTimeout < 0 {
		return fmt.Errorf("-max-timeout must be >= 0, got %v", cfg.maxTimeout)
	}
	if cfg.timeout > 0 && cfg.maxTimeout > 0 && cfg.timeout > cfg.maxTimeout {
		return fmt.Errorf("-timeout %v exceeds -max-timeout %v", cfg.timeout, cfg.maxTimeout)
	}
	if cfg.maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0, got %d", cfg.maxInflight)
	}
	if cfg.queue < -1 {
		return fmt.Errorf("-queue must be >= -1, got %d", cfg.queue)
	}
	if cfg.maxBody < 0 {
		return fmt.Errorf("-max-body must be >= 0, got %d", cfg.maxBody)
	}
	if cfg.maxSessions < 0 {
		return fmt.Errorf("-max-sessions must be >= 0, got %d", cfg.maxSessions)
	}
	if cfg.faults != "" {
		if _, err := faultinject.ParseSpec(cfg.faults); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	if cfg.closureOn {
		if cfg.closureMaxBytes < 0 {
			return fmt.Errorf("-closure-max-bytes must be >= 0, got %d", cfg.closureMaxBytes)
		}
		if cfg.closureWorkers < 1 {
			return fmt.Errorf("-closure-workers must be >= 1, got %d", cfg.closureWorkers)
		}
	}
	if cfg.persistOn {
		if !cfg.closureOn {
			return fmt.Errorf("-persist requires -closure (the durable payload is the warmed closure state)")
		}
		if cfg.dataDir == "" {
			return fmt.Errorf("-persist requires -data-dir")
		}
	}
	if cfg.dataDir != "" && !cfg.persistOn {
		return fmt.Errorf("-data-dir requires -persist")
	}
	if cfg.traceSample < 0 || cfg.traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0, 1], got %v", cfg.traceSample)
	}
	if cfg.slowThreshold < 0 {
		return fmt.Errorf("-slow-threshold must be >= 0, got %v", cfg.slowThreshold)
	}
	if cfg.spanBuffer < 0 {
		return fmt.Errorf("-span-buffer must be >= 0, got %d", cfg.spanBuffer)
	}
	if math.IsNaN(cfg.inboundLimit) || math.IsInf(cfg.inboundLimit, 0) {
		return fmt.Errorf("-trace-inbound-limit must be finite, got %v", cfg.inboundLimit)
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // the FlagSet already printed the problem
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	// Lifecycle events logged outside the request path (durable-state
	// quarantines, save failures) go through slog.Default — point it at
	// the same handler so they share the request log's format.
	slog.SetDefault(logger)
	if err := run(cfg, logger); err != nil {
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(1)
	}
}

func run(cfg config, logger *slog.Logger) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	sv, s, err := build(cfg)
	if err != nil {
		return err
	}

	// Chaos drills: arm fault injection from the flag, or failing that
	// from the environment — and say so loudly either way.
	switch {
	case cfg.faults != "":
		if err := faultinject.ArmSpec(cfg.faults); err != nil {
			return err
		}
		logger.Warn("fault injection ARMED", "spec", cfg.faults, "source", "-faults")
	default:
		armed, err := faultinject.FromEnv()
		if err != nil {
			return err
		}
		if armed {
			logger.Warn("fault injection ARMED", "spec", os.Getenv(faultinject.EnvVar), "source", faultinject.EnvVar)
		}
	}

	st := s.ComputeStats()
	lim := sv.Limits()
	logger.Info("pathserve starting",
		"addr", cfg.addr,
		"schema", s.Name(),
		"classes", s.NumUserClasses(),
		"rels", s.NumRels(),
		"maxIsaDepth", st.MaxIsaDepth,
		"engine", cfg.engine,
		"e", cfg.e,
		"parallel", cfg.parallel,
		"cacheCap", cfg.cacheCap,
		"closure", cfg.closureOn,
		"persist", cfg.persistOn,
		"dataDir", cfg.dataDir,
		"traceSample", cfg.traceSample,
		"slowThreshold", cfg.slowThreshold,
		"pprof", cfg.pprofOn,
		"timeout", lim.DefaultTimeout,
		"maxTimeout", lim.MaxTimeout,
		"maxInflight", lim.MaxConcurrent,
		"queue", lim.MaxQueue,
		"maxBody", lim.MaxBodyBytes,
		"maxSessions", lim.MaxSessions,
		"sessionDebounce", lim.SessionDebounce,
	)

	reqLogger := logger
	if cfg.quiet {
		reqLogger = nil
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           sv.HandlerWith(server.HandlerConfig{Logger: reqLogger, PProf: cfg.pprofOn}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// WriteTimeout must cover the slowest legitimate response; a
		// pprof CPU profile streams for its whole -seconds window, so
		// stay well above the default 30s profile.
		WriteTimeout: 120 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	var reload func() error
	if cfg.schemasDir != "" {
		reload = sv.ReloadSchemas
	}
	return serve(srv, logger, reload, sv.BeginDrain)
}

// serve runs srv until SIGINT/SIGTERM, then drains connections
// gracefully. SIGHUP triggers reload (hot schema reload in
// multi-schema mode; nil means the signal is logged and ignored).
// drain, when non-nil, runs at the start of shutdown — before the
// HTTP drain — to flip /readyz not-ready and flush pending durable
// saves, so a clean SIGTERM always leaves the newest generation on
// disk. Split from run so shutdown is testable.
func serve(srv *http.Server, logger *slog.Logger, reload func() error, drain func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

loop:
	for {
		select {
		case err := <-errc:
			// Listen failed before any signal (bad address, port in use).
			return err
		case <-hup:
			if reload == nil {
				logger.Warn("SIGHUP ignored: not serving a schemas directory")
				continue
			}
			if err := reload(); err != nil {
				// A failed reload leaves the previous generation serving;
				// the process keeps running on known-good state.
				logger.Error("schema reload failed; previous generation keeps serving", "error", err)
			} else {
				logger.Info("schemas reloaded on SIGHUP")
			}
		case <-ctx.Done():
			break loop
		}
	}
	stop() // restore default signal handling: a second ^C kills hard
	logger.Info("pathserve shutting down")
	if drain != nil {
		drain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("pathserve stopped")
	return nil
}

// build assembles the server from the validated config; split from run
// so the wiring is testable without binding a port.
func build(cfg config) (*server.Server, *schema.Schema, error) {
	var opts core.Options
	switch cfg.engine {
	case "paper":
		opts = core.Paper()
	case "safe":
		opts = core.Safe()
	case "exact":
		opts = core.Exact()
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", cfg.engine)
	}
	opts.E = cfg.e
	opts.Parallel = cfg.parallel

	if cfg.schemasDir != "" {
		// Multi-schema mode: every *.sdl file in the directory is served
		// under its base name; SIGHUP and POST /schemas/reload reparse
		// the directory and swap atomically.
		reg := registry.New(opts)
		if err := reg.LoadDir(cfg.schemasDir); err != nil {
			return nil, nil, err
		}
		if cfg.defaultSchema != "" {
			if err := reg.SetDefault(cfg.defaultSchema); err != nil {
				return nil, nil, fmt.Errorf("-default-schema: %w", err)
			}
		}
		sv := server.NewFromRegistry(reg)
		sv.SetCacheCap(cfg.cacheCap)
		sv.SetLimits(server.Limits{
			DefaultTimeout: cfg.timeout,
			MaxTimeout:     cfg.maxTimeout,
			MaxConcurrent:  cfg.maxInflight,
			MaxQueue:       cfg.queue,
			MaxBodyBytes:   cfg.maxBody,
		})
		if cfg.legacyRoutes != "" {
			if err := sv.SetLegacyRoutes(cfg.legacyRoutes); err != nil {
				return nil, nil, err
			}
		}
		if err := cfg.setupPersist(sv); err != nil {
			return nil, nil, err
		}
		if cfg.closureOn {
			sv.EnableClosure(cfg.closureWorkers, cfg.closureMaxBytes)
		}
		cfg.applyTracing(sv)
		sn, err := reg.Acquire("")
		if err != nil {
			return nil, nil, err
		}
		s := sn.Schema()
		sn.Release()
		return sv, s, nil
	}

	var (
		s     *schema.Schema
		store *objstore.Store
	)
	switch {
	case cfg.sdlPath != "":
		f, err := os.Open(cfg.sdlPath)
		if err != nil {
			return nil, nil, err
		}
		s, err = sdl.Parse(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	case cfg.schemaName == "university":
		if cfg.sample {
			store = uni.SampleStore()
			s = store.Schema()
		} else {
			s = uni.New()
		}
	case cfg.schemaName == "parts":
		s = parts.New()
	case cfg.schemaName == "cupid":
		w, err := cupid.Generate(cupid.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		s = w.Schema
	default:
		return nil, nil, fmt.Errorf("unknown schema %q", cfg.schemaName)
	}
	if cfg.storePath != "" {
		f, err := os.Open(cfg.storePath)
		if err != nil {
			return nil, nil, err
		}
		store, err = objstore.Load(s, f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	sv := server.New(s, store, opts)
	sv.SetCacheCap(cfg.cacheCap)
	sv.SetLimits(server.Limits{
		DefaultTimeout:  cfg.timeout,
		MaxTimeout:      cfg.maxTimeout,
		MaxConcurrent:   cfg.maxInflight,
		MaxQueue:        cfg.queue,
		MaxBodyBytes:    cfg.maxBody,
		MaxSessions:     cfg.maxSessions,
		SessionDebounce: cfg.sessionDebounce,
	})
	if cfg.legacyRoutes != "" {
		if err := sv.SetLegacyRoutes(cfg.legacyRoutes); err != nil {
			return nil, nil, err
		}
	}
	if err := cfg.setupPersist(sv); err != nil {
		return nil, nil, err
	}
	if cfg.closureOn {
		sv.EnableClosure(cfg.closureWorkers, cfg.closureMaxBytes)
	}
	cfg.applyTracing(sv)
	return sv, s, nil
}

// setupPersist opens the durable store under -data-dir and wires it
// into the registry and server. It must run before EnableClosure: the
// retrofit warm pass that EnableClosure triggers is where each
// snapshot consults the store and restores from disk instead of
// recompiling. Opening the store also sweeps temp-file debris a
// crashed predecessor left behind; corrupt or stale snapshots are
// quarantined at restore time, so bad durable state can never fail
// the boot.
func (cfg config) setupPersist(sv *server.Server) error {
	if !cfg.persistOn {
		return nil
	}
	ps, err := persist.Open(cfg.dataDir)
	if err != nil {
		return fmt.Errorf("-data-dir: %w", err)
	}
	sv.SchemaRegistry().EnablePersist(ps)
	sv.AttachPersist()
	return nil
}

// applyTracing rebuilds the server's span pipeline when any tracing
// flag departs from the defaults; the server's zero-config pipeline
// (client-forced sampling only) is kept otherwise.
func (cfg config) applyTracing(sv *server.Server) {
	if cfg.traceSample == 0 && cfg.slowThreshold == 0 && cfg.spanBuffer == 0 && cfg.inboundLimit == 0 {
		return
	}
	sv.SetTracing(obs.TraceConfig{
		SampleRate:    cfg.traceSample,
		SlowThreshold: cfg.slowThreshold,
		BufferSize:    cfg.spanBuffer,
		InboundLimit:  cfg.inboundLimit,
	})
}
