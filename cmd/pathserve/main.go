// Command pathserve serves the disambiguation mechanism over
// HTTP/JSON — the backend an interactive query interface (the paper's
// Figure 1) would call:
//
//	pathserve -addr :8080 -schema university -sample
//	curl -s localhost:8080/complete -d '{"expr":"ta~name"}'
//	curl -s localhost:8080/evaluate -d '{"expr":"ta~name","approve":[0]}'
//	curl -s localhost:8080/schema
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/objstore"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/server"
	"pathcomplete/internal/uni"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaName = flag.String("schema", "university", "built-in schema: university, parts, or cupid")
		sdlPath    = flag.String("sdl", "", "load the schema from an SDL file instead")
		storePath  = flag.String("store", "", "load object data from a snapshot file")
		sample     = flag.Bool("sample", false, "mount the built-in sample data (university only)")
		engine     = flag.String("engine", "paper", "engine preset: paper, safe, or exact")
		e          = flag.Int("e", 1, "AGG* parameter")
	)
	flag.Parse()
	if err := run(*addr, *schemaName, *sdlPath, *storePath, *sample, *engine, *e); err != nil {
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(1)
	}
}

func run(addr, schemaName, sdlPath, storePath string, sample bool, engine string, e int) error {
	sv, s, err := build(schemaName, sdlPath, storePath, sample, engine, e)
	if err != nil {
		return err
	}
	log.Printf("pathserve: schema %s (%d classes, %d relationships) on %s",
		s.Name(), s.NumUserClasses(), s.NumRels(), addr)
	return http.ListenAndServe(addr, sv.Handler())
}

// build assembles the server from the flag values; split from run so
// the wiring is testable without binding a port.
func build(schemaName, sdlPath, storePath string, sample bool, engine string, e int) (*server.Server, *schema.Schema, error) {
	var (
		s     *schema.Schema
		store *objstore.Store
	)
	switch {
	case sdlPath != "":
		f, err := os.Open(sdlPath)
		if err != nil {
			return nil, nil, err
		}
		s, err = sdl.Parse(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	case schemaName == "university":
		if sample {
			store = uni.SampleStore()
			s = store.Schema()
		} else {
			s = uni.New()
		}
	case schemaName == "parts":
		s = parts.New()
	case schemaName == "cupid":
		w, err := cupid.Generate(cupid.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		s = w.Schema
	default:
		return nil, nil, fmt.Errorf("unknown schema %q", schemaName)
	}
	if storePath != "" {
		f, err := os.Open(storePath)
		if err != nil {
			return nil, nil, err
		}
		store, err = objstore.Load(s, f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	var opts core.Options
	switch engine {
	case "paper":
		opts = core.Paper()
	case "safe":
		opts = core.Safe()
	case "exact":
		opts = core.Exact()
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", engine)
	}
	opts.E = e
	return server.New(s, store, opts), s, nil
}
