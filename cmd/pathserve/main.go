// Command pathserve serves the disambiguation mechanism over
// HTTP/JSON — the backend an interactive query interface (the paper's
// Figure 1) would call:
//
//	pathserve -addr :8080 -schema university -sample
//	curl -s localhost:8080/complete -d '{"expr":"ta~name"}'
//	curl -s localhost:8080/complete -d '{"expr":"ta~name","trace":true}'
//	curl -s localhost:8080/evaluate -d '{"expr":"ta~name","approve":[0]}'
//	curl -s localhost:8080/schema
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/buildinfo
//
// The process is production-shaped: slog request logging with request
// IDs, Prometheus-style metrics at /metrics, optional pprof at
// /debug/pprof/ (-pprof), connection timeouts, a bounded completion
// cache (-cache), and graceful shutdown on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathcomplete/internal/core"
	"pathcomplete/internal/cupid"
	"pathcomplete/internal/objstore"
	"pathcomplete/internal/parts"
	"pathcomplete/internal/schema"
	"pathcomplete/internal/sdl"
	"pathcomplete/internal/server"
	"pathcomplete/internal/uni"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaName = flag.String("schema", "university", "built-in schema: university, parts, or cupid")
		sdlPath    = flag.String("sdl", "", "load the schema from an SDL file instead")
		storePath  = flag.String("store", "", "load object data from a snapshot file")
		sample     = flag.Bool("sample", false, "mount the built-in sample data (university only)")
		engine     = flag.String("engine", "paper", "engine preset: paper, safe, or exact")
		e          = flag.Int("e", 1, "AGG* parameter")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		cacheCap   = flag.Int("cache", server.DefaultCacheCap, "completion memo cache bound (entries)")
		quiet      = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(*addr, *schemaName, *sdlPath, *storePath, *sample, *engine, *e,
		*pprofOn, *cacheCap, *quiet, logger); err != nil {
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(1)
	}
}

func run(addr, schemaName, sdlPath, storePath string, sample bool, engine string, e int,
	pprofOn bool, cacheCap int, quiet bool, logger *slog.Logger) error {
	sv, s, err := build(schemaName, sdlPath, storePath, sample, engine, e)
	if err != nil {
		return err
	}
	sv.SetCacheCap(cacheCap)

	st := s.ComputeStats()
	logger.Info("pathserve starting",
		"addr", addr,
		"schema", s.Name(),
		"classes", s.NumUserClasses(),
		"rels", s.NumRels(),
		"maxIsaDepth", st.MaxIsaDepth,
		"engine", engine,
		"e", e,
		"cacheCap", cacheCap,
		"pprof", pprofOn,
	)

	reqLogger := logger
	if quiet {
		reqLogger = nil
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           sv.HandlerWith(server.HandlerConfig{Logger: reqLogger, PProf: pprofOn}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// WriteTimeout must cover the slowest legitimate response; a
		// pprof CPU profile streams for its whole -seconds window, so
		// stay well above the default 30s profile.
		WriteTimeout: 120 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	return serve(srv, logger)
}

// serve runs srv until SIGINT/SIGTERM, then drains connections
// gracefully. Split from run so shutdown is testable.
func serve(srv *http.Server, logger *slog.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		// Listen failed before any signal (bad address, port in use).
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard
	logger.Info("pathserve shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("pathserve stopped")
	return nil
}

// build assembles the server from the flag values; split from run so
// the wiring is testable without binding a port.
func build(schemaName, sdlPath, storePath string, sample bool, engine string, e int) (*server.Server, *schema.Schema, error) {
	var (
		s     *schema.Schema
		store *objstore.Store
	)
	switch {
	case sdlPath != "":
		f, err := os.Open(sdlPath)
		if err != nil {
			return nil, nil, err
		}
		s, err = sdl.Parse(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	case schemaName == "university":
		if sample {
			store = uni.SampleStore()
			s = store.Schema()
		} else {
			s = uni.New()
		}
	case schemaName == "parts":
		s = parts.New()
	case schemaName == "cupid":
		w, err := cupid.Generate(cupid.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		s = w.Schema
	default:
		return nil, nil, fmt.Errorf("unknown schema %q", schemaName)
	}
	if storePath != "" {
		f, err := os.Open(storePath)
		if err != nil {
			return nil, nil, err
		}
		store, err = objstore.Load(s, f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	var opts core.Options
	switch engine {
	case "paper":
		opts = core.Paper()
	case "safe":
		opts = core.Safe()
	case "exact":
		opts = core.Exact()
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", engine)
	}
	opts.E = e
	return server.New(s, store, opts), s, nil
}
